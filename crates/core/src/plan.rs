//! The execution-plan IR: a typed, per-layer step program compiled from a
//! [`QModel`] ahead of any ciphertext work.
//!
//! The planner ([`compile`]) resolves everything that is static for a
//! (model, engine) pair up front — consumer layouts, output-channel group
//! splits, encoded kernels and bias positions, materialized remap LUTs,
//! Galois-element and key requirements, and per-step *analytic* operation
//! counts. The executor ([`execute`]) is then a thin interpreter: it walks
//! the steps calling the corresponding [`AthenaEngine`] primitive for each
//! and records the *measured* operation counts around every step via the
//! `op-stats` counters. Three consumers hang off the same plan:
//!
//! * the executor (encrypted inference, bit-identical to the pre-plan
//!   `infer::run_encrypted` path — every step is exact modular arithmetic,
//!   so re-grouping the loop cannot change a single coefficient);
//! * [`ExecutionPlan::to_trace`], which derives the [`ModelTrace`] the
//!   accelerator model lowers to cycles/energy from the steps' analytic
//!   counts;
//! * [`AthenaEngine::keygen_for_plan`], which generates exactly the
//!   deduplicated key material [`ExecutionPlan::required_keys`] demands and
//!   validates Galois coverage with `ensure_covers`.
//!
//! Step vocabulary: `Linear` (coefficient-encoded conv/FC group),
//! `ModSwitch` (Q → q_mid), `ExtractLwes` (Alg. 1 sample extraction),
//! `DimSwitch` (LWE N → n, optionally dropping to `t`), `ResidualAdd`
//! (skip-path extraction + LWE-level scaled add), `Pack` (LWE → RLWE
//! homomorphic decryption), `Fbs` (the fused remap LUT of Alg. 2), `S2C`
//! (slots back to coefficients), the pooling composites
//! `MaxReduce`/`AvgReduce` (LWE-level trees over the accumulator), and
//! `Output` (client-side decrypt + dequantize).

use athena_fhe::bfv::{BfvCiphertext, BfvEvaluator, GaloisKeys, RelinKey, SecretKey};
use athena_fhe::extract::{rlwe_secret_as_lwe_mod, SmallRlwe};
use athena_fhe::fbs::{expected_stats, FbsStats, Lut};
use athena_fhe::lwe::{LweCiphertext, LweKeySwitchKey, LweSecret};
use athena_fhe::noise::{NoiseModel, StepDepths};
use athena_fhe::pack::{BsgsPackingKey, ColumnPackingKey};
use athena_math::sampler::Sampler;
use athena_math::stats::op_stats::{self, HomOpCounts};
use athena_nn::qmodel::{QLinear, QModel, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

use crate::encoding::ConvEncoder;
use crate::pipeline::{AthenaEngine, AthenaEvalKeys, AthenaSecrets, PackingMethod, PipelineStats};
use crate::trace::{LayerTrace, ModelTrace, OpCounts, Phase, TraceParams};
use athena_nn::models::ConvShape;

/// The layout a consumer wants its input packed into.
#[derive(Debug, Clone)]
pub(crate) struct ConsumerLayout {
    /// For each slot `s`, which flat activation index goes there (None =
    /// trivial zero / padding).
    pub slot_of: Vec<Option<usize>>,
    /// `positions[i]` = slot (= coefficient after S2C) of flat activation
    /// `i`.
    pub positions: Vec<usize>,
}

pub(crate) fn flat_layout(len: usize, n: usize) -> ConsumerLayout {
    assert!(len <= n, "value of {len} activations exceeds {n} slots");
    let mut slot_of = vec![None; n];
    for (i, s) in slot_of.iter_mut().take(len).enumerate() {
        *s = Some(i);
    }
    ConsumerLayout {
        slot_of,
        positions: (0..len).collect(),
    }
}

/// Padded `M̂` layout for a conv consumer: activation `(c,h,w)` of the
/// unpadded tensor goes to slot `c·H'W' + (h+p)·W' + (w+p)`.
pub(crate) fn conv_layout(shape: &[usize], padding: usize, n: usize) -> ConsumerLayout {
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let (hp, wp) = (h + 2 * padding, w + 2 * padding);
    assert!(c * hp * wp <= n, "padded input does not fit the ring");
    let mut slot_of = vec![None; n];
    let mut positions = vec![0usize; c * h * w];
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                let flat = (ci * h + y) * w + x;
                let slot = ci * hp * wp + (y + padding) * wp + (x + padding);
                slot_of[slot] = Some(flat);
                positions[flat] = slot;
            }
        }
    }
    ConsumerLayout { slot_of, positions }
}

/// Layout for the consumer of value `value_idx` (first node reading it):
/// conv consumers get the padded `M̂` layout of Eq. 1, everything else flat.
pub(crate) fn consumer_layout(
    model: &QModel,
    value_idx: usize,
    shape: &[usize],
    n: usize,
) -> ConsumerLayout {
    for node in &model.nodes {
        if node.input == value_idx {
            return match &node.op {
                QOp::Linear(l) if !l.is_fc => conv_layout(shape, l.padding, n),
                _ => flat_layout(shape.iter().product(), n),
            };
        }
    }
    flat_layout(shape.iter().product(), n)
}

/// One typed step of the plan.
#[derive(Debug, Clone)]
pub enum StepOp {
    /// Coefficient-encoded conv/FC over stored value `value`: one PMult by
    /// the pre-encoded `kernel` polynomial plus a bias add when `bias` is
    /// non-empty. Large layers appear as several `Linear` steps (one per
    /// output-channel group that fits the ring).
    Linear {
        /// Input value index.
        value: usize,
        /// Encoded kernel polynomial coefficients.
        kernel: Vec<i64>,
        /// Bias terms at output coefficient positions.
        bias: Vec<(usize, i64)>,
    },
    /// Modulus switch `Q → q_mid` of the pending linear output (`None`) or
    /// of a stored value (`Some(idx)` — pooling reads its producer).
    ModSwitch {
        /// Source value, or `None` for the preceding `Linear` output.
        value: Option<usize>,
    },
    /// Sample extraction (Alg. 1) of the listed coefficients.
    ExtractLwes {
        /// Coefficient positions, in flat-activation order.
        positions: Vec<usize>,
    },
    /// LWE dimension switch `N → n`; with `drop_to_t` the LWEs also pay the
    /// final modulus drop (the `e_ms` rounding) — skipped for client-bound
    /// accumulators. Appends to the layer's LWE accumulator.
    DimSwitch {
        /// Whether to drop the switched LWEs from `q_mid` to `t`.
        drop_to_t: bool,
    },
    /// Residual skip: re-extract the skip value's LWEs (mod switch + sample
    /// extraction + dimension switch) and add them into the accumulator at
    /// the LWE level, scaled by `mult`.
    ResidualAdd {
        /// Skip value index.
        skip: usize,
        /// Coefficient positions of the skip value.
        positions: Vec<usize>,
        /// Integer alignment multiplier.
        mult: i64,
        /// Whether the skip LWEs drop to `t` (must match the accumulator's
        /// level).
        drop_to_t: bool,
    },
    /// Max-pooling composite: `k²` window streams over the accumulator and
    /// a max tree of `k²−1` rounds, each a full
    /// diff → pack → FBS(ReLU) → S2C → extract cycle.
    MaxReduce {
        /// Pool kernel (= stride).
        k: usize,
        /// Input shape `[c, h, w]` of the accumulator.
        shape: [usize; 3],
    },
    /// Average-pooling composite: exact LWE-level window sums (the divide
    /// rides the next FBS LUT).
    AvgReduce {
        /// Pool kernel (= stride).
        k: usize,
        /// Input shape `[c, h, w]` of the accumulator.
        shape: [usize; 3],
    },
    /// Packing: place accumulator LWEs into slots per `slot_of` (trivial
    /// zeros elsewhere) and run the LWE → RLWE homomorphic decryption.
    Pack {
        /// `slot_of[s]` = flat accumulator index for slot `s`.
        slot_of: Vec<Option<usize>>,
    },
    /// Functional bootstrapping with the materialized fused remap LUT
    /// (plus the non-valid-slot mask when the LUT moves 0).
    Fbs {
        /// The LUT, resolved at compile time.
        lut: Lut,
    },
    /// Slot-to-coefficient bridge; stores the result as value `value`.
    S2C {
        /// Output value index.
        value: usize,
        /// Coefficient positions of the stored value (for its consumers).
        positions: Vec<usize>,
        /// Logical shape of the stored value.
        shape: Vec<usize>,
    },
    /// Client-side decryption of the accumulator and dequantization by
    /// `scale`.
    Output {
        /// Dequantization factor (`in_scale·w_scale` for a final linear
        /// layer, 1 otherwise).
        scale: f64,
    },
}

impl StepOp {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            StepOp::Linear { .. } => "linear",
            StepOp::ModSwitch { .. } => "mod_switch",
            StepOp::ExtractLwes { .. } => "extract",
            StepOp::DimSwitch { .. } => "dim_switch",
            StepOp::ResidualAdd { .. } => "residual_add",
            StepOp::MaxReduce { .. } => "max_reduce",
            StepOp::AvgReduce { .. } => "avg_reduce",
            StepOp::Pack { .. } => "pack",
            StepOp::Fbs { .. } => "fbs",
            StepOp::S2C { .. } => "s2c",
            StepOp::Output { .. } => "output",
        }
    }
}

/// One plan step plus its static metadata.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// The operation.
    pub op: StepOp,
    /// Phase attribution (Fig. 9 breakdown).
    pub phase: Phase,
    /// Analytic operation counts the step should perform, resolved at
    /// compile time from the schedules themselves (BSGS splits, diagonal
    /// occupancy, LUT interpolation). The executor's measured counts must
    /// match these exactly up to documented data-dependent skips.
    pub analytic: OpCounts,
    /// Analytic noise charge in bits (Table-4 model): an upper bound on
    /// the invariant-noise growth this step inflicts on the RLWE chain it
    /// participates in, computed at compile time from
    /// [`athena_fhe::noise::NoiseModel`]/[`StepDepths`] with the step's
    /// concrete fan-ins.
    /// Steps that operate below the RLWE layer (extraction, dimension
    /// switch, LWE adds, output) charge 0; the pooling composite charges
    /// its worst single inner pack→FBS→S2C chain (each round restarts from
    /// fresh packing noise, so one round's chain is the binding
    /// constraint). The probe mode of [`execute_probed`] pins
    /// `charge ≥ measured consumption` per step.
    pub noise_bits: u32,
}

/// All steps of one model node.
#[derive(Debug, Clone)]
pub struct PlanLayer {
    /// Node index in the source model.
    pub node: usize,
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
}

/// Key material a plan demands (all deduplicated).
#[derive(Debug, Clone, Default)]
pub struct KeyRequirements {
    /// Galois elements for every rotation in the plan (S2C ∪ BSGS packing),
    /// sorted and deduplicated.
    pub galois: Vec<usize>,
    /// Whether any step relinearizes (FBS CMults).
    pub relin: bool,
    /// Whether any step switches LWE dimension.
    pub lwe_ksk: bool,
    /// Whether the column packing key is used.
    pub pack_column: bool,
    /// Whether the BSGS packing key is used.
    pub pack_bsgs: bool,
}

/// A compiled execution plan: the typed IR the executor interprets, the
/// trace derives from, and keygen sizes key material against.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Ring degree.
    pub n: usize,
    /// Plaintext modulus.
    pub t: u64,
    /// Intermediate extraction prime.
    pub q_mid: u64,
    /// Small LWE dimension.
    pub lwe_n: usize,
    /// RNS limb count of `Q`.
    pub limbs: usize,
    /// Packing method the plan was compiled for.
    pub packing: PackingMethod,
    /// Coefficient position of each flat input activation.
    pub input_positions: Vec<usize>,
    /// Input tensor shape.
    pub input_shape: Vec<usize>,
    /// Per-node step lists.
    pub layers: Vec<PlanLayer>,
    keys: KeyRequirements,
}

impl ExecutionPlan {
    /// The key material this plan demands.
    pub fn required_keys(&self) -> &KeyRequirements {
        &self.keys
    }

    /// Total step count.
    pub fn step_count(&self) -> usize {
        self.layers.iter().map(|l| l.steps.len()).sum()
    }

    /// Sum of all steps' analytic counts.
    pub fn analytic_total(&self) -> OpCounts {
        let mut t = OpCounts::default();
        for l in &self.layers {
            for s in &l.steps {
                t.add(&s.analytic);
            }
        }
        t
    }

    /// The worst single RLWE chain's analytic noise charge in bits: each
    /// `pack` starts a fresh chain (homomorphic decryption re-encrypts
    /// from fresh key material) that runs pack → FBS → S2C → the next
    /// `linear`, so the decryptability constraint of Table 4 is the
    /// maximum chain total, not the whole-plan sum. The input encryption
    /// opens the first chain (its `linear` steps charge against fresh
    /// noise too).
    pub fn worst_chain_noise_bits(&self) -> u32 {
        let mut worst = 0u32;
        let mut chain = 0u32;
        for l in &self.layers {
            for s in &l.steps {
                if matches!(s.op, StepOp::Pack { .. }) {
                    worst = worst.max(chain);
                    chain = 0;
                }
                chain += s.noise_bits;
            }
        }
        worst.max(chain)
    }

    /// Derives the [`ModelTrace`] the accelerator model consumes from the
    /// plan's analytic per-step counts: same steps, same schedules — the
    /// trace *is* the plan, re-grouped by (layer, phase).
    pub fn to_trace(&self, name: &'static str, quant: &QuantConfig) -> ModelTrace {
        let params = TraceParams {
            n: self.n,
            limbs: self.limbs,
            t: self.t,
            lwe_n: self.lwe_n,
        };
        let layers = self
            .layers
            .iter()
            .map(|pl| {
                let mut per: Vec<(Phase, OpCounts)> = Phase::all()
                    .iter()
                    .map(|&p| (p, OpCounts::default()))
                    .collect();
                for s in &pl.steps {
                    let slot = per
                        .iter_mut()
                        .find(|(p, _)| *p == s.phase)
                        .expect("phase present");
                    slot.1.add(&s.analytic);
                }
                LayerTrace {
                    layer: pl.node,
                    phases: per
                        .into_iter()
                        .filter(|(_, c)| *c != OpCounts::default())
                        .collect(),
                }
            })
            .collect();
        ModelTrace {
            name,
            params,
            quant: *quant,
            layers,
        }
    }
}

/// Converts the measured counter snapshot into trace units.
pub fn counts_from_hom(h: &HomOpCounts) -> OpCounts {
    OpCounts {
        pmult: h.pmult,
        cmult: h.cmult,
        smult: h.smult,
        hadd: h.hadd,
        hrot: h.hrot,
        sample_extract: h.sample_extract,
        mod_switch: h.mod_switch,
    }
}

/// The runtime noise charge of one FBS step: the paper's Table-4 row
/// ([`StepDepths::fbs`]: `⌈log₂(t−1)⌉+1` CMult, 1 SMult,
/// `⌈log₂(t−1)⌉−1` HAdd) plus the slack the concrete Alg. 2 schedule
/// demonstrably pays and the paper's production row absorbs in its
/// Δ-granularity rounding: one binary operand-sum HAdd per CMult level
/// (`v_out ≈ N·t·(v₁+v₂)` — the `+v₂` is a real bit per depth), the
/// relinearization key-switch slack (`ks_slack` — injected at every tree
/// level and amplified by the remainder, bounded by one floor hop), and
/// the non-valid-slot mask PMult when the LUT moves 0. The
/// noise-telemetry tests pin this as a true upper bound on the measured
/// consumption; §7 of DESIGN.md records the deviation from the published
/// row.
fn fbs_runtime_charge(t: u64, mask: bool, nm: &NoiseModel, ks_slack: u32) -> u32 {
    let d = StepDepths::fbs(t).cmult; // ⌈log₂(t−1)⌉ + 1
    StepDepths::fbs(t)
        .with_pmult(u32::from(mask))
        .with_hadd(d)
        .noise_bits(nm)
        + ks_slack
}

/// Analytic counts of one FBS step: the dry-run BSGS schedule of the
/// interpolated LUT, the final constant add (paid whenever the evaluation
/// is non-trivial), and the non-valid-slot mask PMult when needed.
fn fbs_analytic(lut: &Lut, mask: bool) -> OpCounts {
    let es = expected_stats(lut);
    let mut c = OpCounts {
        cmult: es.cmult as u64,
        smult: es.smult as u64,
        hadd: es.hadd as u64,
        ..OpCounts::default()
    };
    if es != FbsStats::default() {
        c.hadd += 1; // the constant-coefficient add_plain
    }
    if mask {
        c.pmult += 1;
    }
    c
}

/// Analytic counts of the `k²−1`-round max tree over `len` LWEs: each
/// round is one pack + FBS(ReLU) + S2C + extract cycle (the LWE-level
/// diffs and adds are below the op-count abstraction).
fn max_reduce_analytic(engine: &AthenaEngine, k: usize, len: usize) -> OpCounts {
    let relu = Lut::from_signed_fn(engine.context().t(), |x| x.max(0));
    let mut per_round = counts_from_hom(&engine.pack_expected_op_counts(len));
    per_round.add(&fbs_analytic(&relu, false));
    per_round.add(&counts_from_hom(&engine.slot_to_coeff().op_counts()));
    per_round.add(&OpCounts {
        mod_switch: 1,
        sample_extract: len as u64,
        ..OpCounts::default()
    });
    let mut total = OpCounts::default();
    for _ in 0..(k * k - 1) {
        total.add(&per_round);
    }
    total
}

/// One output-channel group of a linear layer, fully resolved.
struct LinearGroupPlan {
    kernel: Vec<i64>,
    bias: Vec<(usize, i64)>,
    positions: Vec<usize>,
}

/// Splits a linear layer into output-channel groups that fit the ring and
/// resolves each group's encoded kernel, bias placement, and output
/// positions (the planner half of the old `run_linear_accumulate`).
fn plan_linear_groups(
    n: usize,
    in_shape: &[usize],
    in_len: usize,
    l: &QLinear,
) -> (Vec<LinearGroupPlan>, Vec<usize>) {
    let (c_out, c_in, k) = (
        l.weight.shape()[0],
        l.weight.shape()[1],
        l.weight.shape()[2],
    );
    // Effective input spatial dims (padded for conv; 1×1 for FC).
    let (hp, wp) = if l.is_fc {
        (1usize, 1usize)
    } else {
        (in_shape[1] + 2 * l.padding, in_shape[2] + 2 * l.padding)
    };
    let eff_cin = if l.is_fc { in_len } else { c_in };
    assert_eq!(
        if l.is_fc { eff_cin } else { c_in },
        if l.is_fc { c_in } else { in_shape[0] },
        "input channel mismatch"
    );
    // Choose output-channel group size that fits.
    let hw = hp * wp;
    let mut co_g = c_out;
    loop {
        let t_idx = hw * (co_g * eff_cin - 1) + wp * (k - 1) + k - 1;
        if t_idx + eff_cin * hw <= n {
            break;
        }
        assert!(
            co_g > 1,
            "layer does not fit ring degree {n} even with one output channel"
        );
        co_g = co_g.div_ceil(2);
    }
    let groups = c_out.div_ceil(co_g);
    let valid = hp - k + 1;
    let out_hw = if l.is_fc {
        1
    } else {
        (in_shape[1] + 2 * l.padding - k) / l.stride + 1
    };
    let mut out = Vec::with_capacity(groups);
    for g in 0..groups {
        let co_lo = g * co_g;
        let co_hi = ((g + 1) * co_g).min(c_out);
        let g_cout = co_hi - co_lo;
        let shape = ConvShape {
            hw: hp,
            c_in: eff_cin,
            c_out: g_cout,
            k,
            stride: 1,
            padding: 0,
        };
        let enc = ConvEncoder::new(shape, n);
        let per = eff_cin * k * k;
        let kw = ITensor::from_vec(
            &[g_cout, eff_cin, k, k],
            l.weight.data()[co_lo * per..co_hi * per].to_vec(),
        );
        let mut bias = Vec::new();
        let mut positions = Vec::new();
        for co in 0..g_cout {
            for oy in 0..out_hw {
                for ox in 0..out_hw {
                    let (y, x) = (oy * l.stride, ox * l.stride);
                    debug_assert!(y < valid && x < valid);
                    let pos = enc.output_index(co, y, x);
                    positions.push(pos);
                    let b = l.bias[co_lo + co];
                    if b != 0 {
                        bias.push((pos, b));
                    }
                }
            }
        }
        out.push(LinearGroupPlan {
            kernel: enc.encode_kernel(&kw),
            bias,
            positions,
        });
    }
    (out, vec![c_out, out_hw, out_hw])
}

/// Compiles a quantized model into an [`ExecutionPlan`] for an engine.
///
/// # Panics
///
/// Panics if a layer does not fit the engine's ring degree in a single
/// input-channel group (use larger parameters or a smaller model).
pub fn compile(engine: &AthenaEngine, model: &QModel, input_shape: &[usize]) -> ExecutionPlan {
    let ctx = engine.context();
    let n = ctx.n();
    let t = ctx.t();
    let a_max = model.cfg.a_max();

    // The Table-4 noise model at this engine's parameters, and the charges
    // of the two fixed-shape tail steps. The S2C fan-in is the single-stage
    // transform's own diagonal count (its schedule is engine-static).
    // Key-switching steps (S2C and BSGS-packing rotations, FBS relin) also
    // charge the gadget noise-floor slack — see
    // `NoiseModel::keyswitch_slack_bits`.
    let nm = engine.noise_model();
    let limb_bits = ctx
        .params()
        .q_primes
        .iter()
        .map(|&p| 64 - p.leading_zeros())
        .max()
        .unwrap_or(0);
    let ks_slack = nm.keyswitch_slack_bits(limb_bits, ctx.params().q_primes.len() as u32);
    let pack_charge = StepDepths::packing(ctx.params().lwe_n as u64).noise_bits(&nm)
        + match engine.packing_method() {
            PackingMethod::Column => 0,
            PackingMethod::Bsgs => ks_slack,
        };
    let s2c_charge = StepDepths::s2c(1, engine.slot_to_coeff().op_counts().pmult.max(1))
        .noise_bits(&nm)
        + ks_slack;

    struct PlannedValue {
        positions: Vec<usize>,
        shape: Vec<usize>,
    }
    let in_layout = consumer_layout(model, 0, input_shape, n);
    let mut values: Vec<Option<PlannedValue>> = vec![Some(PlannedValue {
        positions: in_layout.positions.clone(),
        shape: input_shape.to_vec(),
    })];

    let mut layers = Vec::with_capacity(model.nodes.len());
    let mut keys = KeyRequirements::default();
    let note_pack = |keys: &mut KeyRequirements| match engine.packing_method() {
        PackingMethod::Column => keys.pack_column = true,
        PackingMethod::Bsgs => keys.pack_bsgs = true,
    };

    for (ni, node) in model.nodes.iter().enumerate() {
        let is_last = ni == model.nodes.len() - 1;
        let sv = values[node.input].as_ref().expect("producer planned");
        let (sv_positions, sv_shape) = (sv.positions.clone(), sv.shape.clone());
        let mut steps: Vec<PlanStep> = Vec::new();
        let out_shape: Vec<usize> = match &node.op {
            QOp::Linear(l) => {
                // Structural accumulation fan-in of the step: all of
                // `C_in·k²` taps (the paper's production row charges the
                // channel fan-in only; counting the spatial taps too is
                // strictly more conservative).
                let k = l.weight.shape()[2];
                let eff_cin = if l.is_fc {
                    sv_positions.len()
                } else {
                    l.weight.shape()[1]
                };
                let fan_in = (eff_cin * k * k).max(1) as u64;
                let (groups, out_shape) = plan_linear_groups(n, &sv_shape, sv_positions.len(), l);
                for g in groups {
                    let extracted = g.positions.len() as u64;
                    let has_bias = !g.bias.is_empty();
                    steps.push(PlanStep {
                        phase: Phase::Linear,
                        analytic: OpCounts {
                            pmult: 1,
                            hadd: u64::from(has_bias),
                            ..OpCounts::default()
                        },
                        noise_bits: StepDepths::linear(fan_in)
                            .with_hadd(u32::from(has_bias))
                            .noise_bits(&nm),
                        op: StepOp::Linear {
                            value: node.input,
                            kernel: g.kernel,
                            bias: g.bias,
                        },
                    });
                    steps.push(PlanStep {
                        phase: Phase::Conversion,
                        analytic: OpCounts {
                            mod_switch: 1,
                            ..OpCounts::default()
                        },
                        noise_bits: 0,
                        op: StepOp::ModSwitch { value: None },
                    });
                    steps.push(PlanStep {
                        phase: Phase::Conversion,
                        analytic: OpCounts {
                            sample_extract: extracted,
                            ..OpCounts::default()
                        },
                        noise_bits: 0,
                        op: StepOp::ExtractLwes {
                            positions: g.positions,
                        },
                    });
                    keys.lwe_ksk = true;
                    steps.push(PlanStep {
                        phase: Phase::Conversion,
                        analytic: OpCounts::default(),
                        noise_bits: 0,
                        op: StepOp::DimSwitch {
                            drop_to_t: !is_last,
                        },
                    });
                }
                if let Some((skip_idx, mult)) = node.skip {
                    let skip = values[skip_idx].as_ref().expect("skip planned");
                    steps.push(PlanStep {
                        phase: Phase::Conversion,
                        analytic: OpCounts {
                            mod_switch: 1,
                            sample_extract: skip.positions.len() as u64,
                            ..OpCounts::default()
                        },
                        noise_bits: 0,
                        op: StepOp::ResidualAdd {
                            skip: skip_idx,
                            positions: skip.positions.clone(),
                            mult,
                            drop_to_t: !is_last,
                        },
                    });
                }
                out_shape
            }
            QOp::MaxPool { k } => {
                let (c, h, w) = (sv_shape[0], sv_shape[1], sv_shape[2]);
                let (oh, ow) = (h / k, w / k);
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts {
                        mod_switch: 1,
                        ..OpCounts::default()
                    },
                    noise_bits: 0,
                    op: StepOp::ModSwitch {
                        value: Some(node.input),
                    },
                });
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts {
                        sample_extract: sv_positions.len() as u64,
                        ..OpCounts::default()
                    },
                    noise_bits: 0,
                    op: StepOp::ExtractLwes {
                        positions: sv_positions.clone(),
                    },
                });
                keys.lwe_ksk = true;
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts::default(),
                    noise_bits: 0,
                    op: StepOp::DimSwitch { drop_to_t: true },
                });
                // Each max round packs, bootstraps, and re-extracts.
                keys.relin = true;
                note_pack(&mut keys);
                steps.push(PlanStep {
                    phase: Phase::Pooling,
                    analytic: max_reduce_analytic(engine, *k, c * oh * ow),
                    // Each inner round runs a full pack → FBS(ReLU) → S2C
                    // chain that restarts from fresh packing noise, so the
                    // composite's charge is one round's chain total.
                    noise_bits: pack_charge
                        + fbs_runtime_charge(t, false, &nm, ks_slack)
                        + s2c_charge,
                    op: StepOp::MaxReduce {
                        k: *k,
                        shape: [c, h, w],
                    },
                });
                vec![c, oh, ow]
            }
            QOp::AvgPool { k } => {
                let (c, h, w) = (sv_shape[0], sv_shape[1], sv_shape[2]);
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts {
                        mod_switch: 1,
                        ..OpCounts::default()
                    },
                    noise_bits: 0,
                    op: StepOp::ModSwitch {
                        value: Some(node.input),
                    },
                });
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts {
                        sample_extract: sv_positions.len() as u64,
                        ..OpCounts::default()
                    },
                    noise_bits: 0,
                    op: StepOp::ExtractLwes {
                        positions: sv_positions.clone(),
                    },
                });
                keys.lwe_ksk = true;
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts::default(),
                    noise_bits: 0,
                    op: StepOp::DimSwitch { drop_to_t: true },
                });
                steps.push(PlanStep {
                    phase: Phase::Pooling,
                    analytic: OpCounts::default(),
                    noise_bits: 0,
                    op: StepOp::AvgReduce {
                        k: *k,
                        shape: [c, h, w],
                    },
                });
                vec![c, h / k, w / k]
            }
        };

        if is_last {
            let scale = match &node.op {
                QOp::Linear(l) => l.in_scale * l.w_scale,
                _ => 1.0,
            };
            steps.push(PlanStep {
                phase: Phase::Linear,
                analytic: OpCounts::default(),
                noise_bits: 0,
                op: StepOp::Output { scale },
            });
            values.push(None);
            layers.push(PlanLayer { node: ni, steps });
            continue;
        }

        // The five-step tail: pack into the consumer's layout, bootstrap
        // through the fused remap LUT, and bridge back to coefficients.
        let out_len: usize = out_shape.iter().product();
        let layout = consumer_layout(model, ni + 1, &out_shape, n);
        let lut = match &node.op {
            QOp::Linear(l) => {
                let lc = l.clone();
                Lut::from_signed_fn(t, move |v| lc.remap(v, a_max))
            }
            QOp::AvgPool { k } => {
                let kk = (k * k) as f64;
                Lut::from_signed_fn(t, move |v| {
                    ((v as f64 / kk).round() as i64).clamp(-a_max, a_max)
                })
            }
            QOp::MaxPool { .. } => Lut::from_signed_fn(t, |v| v),
        };
        note_pack(&mut keys);
        keys.relin = true;
        steps.push(PlanStep {
            phase: Phase::Conversion,
            analytic: counts_from_hom(&engine.pack_expected_op_counts(out_len)),
            noise_bits: pack_charge,
            op: StepOp::Pack {
                slot_of: layout.slot_of.clone(),
            },
        });
        let needs_mask = lut.get(0) != 0 && layout.slot_of.iter().any(|s| s.is_none());
        let fbs_phase = match &node.op {
            QOp::Linear(_) => Phase::Activation,
            _ => Phase::Pooling,
        };
        steps.push(PlanStep {
            phase: fbs_phase,
            analytic: fbs_analytic(&lut, needs_mask),
            noise_bits: fbs_runtime_charge(t, needs_mask, &nm, ks_slack),
            op: StepOp::Fbs { lut },
        });
        steps.push(PlanStep {
            phase: Phase::Conversion,
            analytic: counts_from_hom(&engine.slot_to_coeff().op_counts()),
            noise_bits: s2c_charge,
            op: StepOp::S2C {
                value: ni + 1,
                positions: layout.positions.clone(),
                shape: out_shape.clone(),
            },
        });
        values.push(Some(PlannedValue {
            positions: layout.positions,
            shape: out_shape,
        }));
        layers.push(PlanLayer { node: ni, steps });
    }

    // Galois requirements: the S2C schedule whenever an S2C happens (every
    // non-final layer and every max round), and the BSGS packing schedule
    // when packing runs via BSGS — merged into one deduplicated set.
    let uses_s2c = layers.iter().any(|l| {
        l.steps
            .iter()
            .any(|s| matches!(s.op, StepOp::S2C { .. } | StepOp::MaxReduce { .. }))
    });
    let mut galois = Vec::new();
    if uses_s2c {
        galois.extend(engine.slot_to_coeff().required_galois_elements(ctx));
    }
    if keys.pack_bsgs {
        galois.extend(BsgsPackingKey::required_galois_elements_for(
            ctx,
            ctx.params().lwe_n,
        ));
    }
    galois.sort_unstable();
    galois.dedup();
    keys.galois = galois;

    ExecutionPlan {
        n,
        t,
        q_mid: engine.q_mid(),
        lwe_n: ctx.params().lwe_n,
        limbs: ctx.params().q_primes.len(),
        packing: engine.packing_method(),
        input_positions: in_layout.positions,
        input_shape: input_shape.to_vec(),
        layers,
        keys,
    }
}

impl AthenaEngine {
    /// Plan-driven key generation: generates exactly the deduplicated
    /// Galois and packing key material [`ExecutionPlan::required_keys`]
    /// demands, and validates Galois coverage with `ensure_covers` before
    /// returning. For a plan that exercises the engine's full loop this
    /// produces the same key set as [`AthenaEngine::keygen`] (identical
    /// sampler draw order); for narrower plans it generates less.
    pub fn keygen_for_plan(
        &self,
        plan: &ExecutionPlan,
        sampler: &mut Sampler,
    ) -> (AthenaSecrets, AthenaEvalKeys) {
        let req = plan.required_keys();
        let ctx = self.context();
        let sk = SecretKey::generate(ctx, sampler);
        let lwe_sk = LweSecret::generate(ctx.params().lwe_n, ctx.t(), sampler);
        let rlk = RelinKey::generate(ctx, &sk, sampler);
        let gk = GaloisKeys::generate(ctx, &sk, &req.galois, sampler);
        // A schedule change that forgets an element fails at keygen, not
        // mid-inference.
        gk.ensure_covers(&req.galois);
        let big = rlwe_secret_as_lwe_mod(&sk, plan.q_mid);
        let small_mid = LweSecret::from_coeffs(lwe_sk.coeffs().to_vec(), plan.q_mid);
        let lwe_ksk =
            LweKeySwitchKey::generate(&big, &small_mid, ctx.params().lwe_ks_base_log, sampler);
        let pack = ColumnPackingKey::generate(ctx, &sk, &lwe_sk, sampler);
        let pack_bsgs = if req.pack_bsgs {
            let k = BsgsPackingKey::generate(ctx, &sk, &lwe_sk, sampler);
            gk.ensure_covers(&k.required_galois_elements(ctx));
            Some(k)
        } else {
            None
        };
        (
            AthenaSecrets { sk, lwe_sk },
            AthenaEvalKeys {
                rlk,
                gk,
                lwe_ksk,
                pack,
                pack_bsgs,
            },
        )
    }
}

/// The measured record of one executed step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Source node index.
    pub node: usize,
    /// Step index within the node.
    pub step: usize,
    /// Step label ([`StepOp::label`]).
    pub label: &'static str,
    /// Phase attribution.
    pub phase: Phase,
    /// Compile-time analytic counts.
    pub analytic: OpCounts,
    /// Counter-measured counts (zero when the `op-stats` feature is off,
    /// and attributable only when no other thread drives the engine
    /// concurrently — the counters are process-global).
    pub measured: OpCounts,
    /// Compile-time analytic noise charge in bits
    /// ([`PlanStep::noise_bits`]).
    pub noise_bits: u32,
    /// Measured invariant-noise budget of the step's RLWE output, sampled
    /// right after the step ran. `Some` only under [`NoiseProbe::On`] and
    /// only for RLWE-producing steps (`linear`, `pack`, `fbs`, `s2c`) —
    /// extraction and LWE-level steps have no `Q`-basis ciphertext to
    /// probe, and the pooling composite's inner chains end at the LWE
    /// level.
    pub noise_budget: Option<i64>,
    /// Measured noise consumption of the step in bits: the budget of its
    /// RLWE input (the stored value for `linear`, the fresh input budget
    /// for `pack` — packing restarts the chain from fresh key-material
    /// noise — the packed/bootstrapped register for `fbs`/`s2c`) minus
    /// [`StepReport::noise_budget`]. The plan pins
    /// `noise_bits ≥ noise_consumed` in tests.
    pub noise_consumed: Option<i64>,
}

/// Typed failure of a probed execution: the measured invariant-noise
/// budget reached zero after a step, so every value downstream of it would
/// decrypt to garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoiseExhausted {
    /// Source node index of the exhausting step.
    pub node: usize,
    /// Step index within the node.
    pub step: usize,
    /// Step label ([`StepOp::label`]).
    pub label: &'static str,
    /// The measured budget (`≤ 0`; `-1` once the noise has swamped the
    /// invariant — the probe saturates there).
    pub budget: i64,
}

impl std::fmt::Display for NoiseExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "noise budget exhausted at node {} step {} ({}): {} bits left",
            self.node, self.step, self.label, self.budget
        )
    }
}

impl std::error::Error for NoiseExhausted {}

/// Whether [`execute_probed`] samples the measured noise budget after
/// every step. Probing needs the secret key (already supplied to the
/// executor for input encryption) and is for tests/debugging only: a
/// production server holds no secret key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseProbe {
    /// No probing; `noise_budget`/`noise_consumed` stay `None` and the
    /// execution cannot fail.
    Off,
    /// Probe after every RLWE-producing step and fail with
    /// [`NoiseExhausted`] the moment a budget reaches zero, instead of
    /// silently decrypting garbage at the end.
    On,
}

/// Result of executing a plan.
#[derive(Debug)]
pub struct PlanRun {
    /// Decrypted float logits.
    pub logits: Vec<f64>,
    /// Aggregate pipeline statistics.
    pub stats: PipelineStats,
    /// Per-step analytic vs measured counts, in execution order.
    pub steps: Vec<StepReport>,
    /// Budget of the freshly encrypted input (probe mode only): the
    /// baseline every chain starts from.
    pub fresh_budget: Option<i64>,
}

/// Executor state: the registers the step vocabulary reads and writes.
struct ExecState {
    /// Stored values (S2C outputs + the encrypted input), by value index.
    values: Vec<Option<BfvCiphertext>>,
    /// Pending linear output (between `Linear` and `ModSwitch`).
    cur: Option<BfvCiphertext>,
    /// Mod-switched RLWE (between `ModSwitch` and `ExtractLwes`).
    small: Option<SmallRlwe>,
    /// Extracted dimension-`N` LWEs (between `ExtractLwes` and
    /// `DimSwitch`).
    big: Vec<LweCiphertext>,
    /// The layer's LWE accumulator (grows across groups, consumed by
    /// `Pack`/reduce/`Output`).
    acc: Vec<LweCiphertext>,
    /// Slot assignment of the last `Pack` (the FBS mask needs it).
    slots: Vec<Option<LweCiphertext>>,
    /// Packed ciphertext (between `Pack` and `Fbs`).
    packed: Option<BfvCiphertext>,
    /// Bootstrapped ciphertext (between `Fbs` and `S2C`).
    boot: Option<BfvCiphertext>,
    logits: Vec<f64>,
}

/// Executes a compiled plan on one encrypted input.
///
/// Bit-identical to the pre-plan monolithic loop: the steps perform the
/// same exact modular arithmetic in the same order, and the only sampler
/// draws are the input encryption's. Equivalent to [`execute_probed`] with
/// [`NoiseProbe::Off`], which cannot fail.
pub fn execute(
    engine: &AthenaEngine,
    secrets: &AthenaSecrets,
    keys: &AthenaEvalKeys,
    plan: &ExecutionPlan,
    input: &ITensor,
    sampler: &mut Sampler,
) -> PlanRun {
    execute_probed(engine, secrets, keys, plan, input, sampler, NoiseProbe::Off)
        .expect("unprobed execution cannot exhaust")
}

/// Per-register noise-budget tracker for probe mode: mirrors the RLWE
/// registers of [`ExecState`] so each step's consumption is measured
/// against its actual chain predecessor.
struct NoiseTracker {
    /// Fresh input budget (also the baseline of every `pack`, whose output
    /// noise is built from fresh packing-key encryptions).
    fresh: i64,
    /// Budget of each stored value (input + S2C outputs).
    values: Vec<Option<i64>>,
    /// Budget after the last `pack`.
    packed: Option<i64>,
    /// Budget after the last `fbs`.
    boot: Option<i64>,
}

/// Executes a compiled plan, optionally sampling the measured
/// invariant-noise budget after every RLWE-producing step.
///
/// With [`NoiseProbe::On`] the returned [`StepReport`]s carry
/// `noise_budget`/`noise_consumed` alongside the analytic `noise_bits`
/// charge, and the execution aborts with a typed [`NoiseExhausted`] error
/// the moment a probed budget reaches zero — the paper's Table-4 invariant
/// ("total noise stays under Δ/2") made observable and enforced at
/// runtime, instead of decrypting garbage logits. Probing performs no
/// sampler draws and no homomorphic ops, so the logits (and the measured
/// op counts) are bit-identical with the probe on or off.
#[allow(clippy::too_many_arguments)]
pub fn execute_probed(
    engine: &AthenaEngine,
    secrets: &AthenaSecrets,
    keys: &AthenaEvalKeys,
    plan: &ExecutionPlan,
    input: &ITensor,
    sampler: &mut Sampler,
    probe: NoiseProbe,
) -> Result<PlanRun, NoiseExhausted> {
    assert_eq!(input.shape(), &plan.input_shape[..], "input shape mismatch");
    let n = plan.n;
    let mut stats = PipelineStats::default();
    let mut st = ExecState {
        values: vec![None; plan.layers.len() + 1],
        cur: None,
        small: None,
        big: Vec::new(),
        acc: Vec::new(),
        slots: Vec::new(),
        packed: None,
        boot: None,
        logits: Vec::new(),
    };
    // Encrypt the input in its consumer's layout.
    let mut coeffs = vec![0i64; n];
    for (flat, &pos) in plan.input_positions.iter().enumerate() {
        coeffs[pos] = input.data()[flat];
    }
    let positions_all: Vec<usize> = (0..n).collect();
    st.values[0] = Some(engine.encrypt_at(&coeffs, &positions_all, secrets, sampler));

    let budget_of =
        |ct: &BfvCiphertext| BfvEvaluator::new(engine.context()).noise_budget(ct, &secrets.sk);
    let mut tracker = match probe {
        NoiseProbe::Off => None,
        NoiseProbe::On => {
            let fresh = budget_of(st.values[0].as_ref().expect("input encrypted"));
            let mut values = vec![None; plan.layers.len() + 1];
            values[0] = Some(fresh);
            Some(NoiseTracker {
                fresh,
                values,
                packed: None,
                boot: None,
            })
        }
    };

    let mut reports = Vec::with_capacity(plan.step_count());
    for layer in &plan.layers {
        for (si, step) in layer.steps.iter().enumerate() {
            let ((), hom) = op_stats::measure(|| {
                run_step(engine, secrets, keys, n, &step.op, &mut st, &mut stats)
            });
            let (budget, consumed) = match &mut tracker {
                None => (None, None),
                Some(tr) => probe_step(&step.op, &st, tr, &budget_of),
            };
            reports.push(StepReport {
                node: layer.node,
                step: si,
                label: step.op.label(),
                phase: step.phase,
                analytic: step.analytic,
                measured: counts_from_hom(&hom),
                noise_bits: step.noise_bits,
                noise_budget: budget,
                noise_consumed: consumed,
            });
            if let Some(b) = budget {
                if b <= 0 {
                    return Err(NoiseExhausted {
                        node: layer.node,
                        step: si,
                        label: step.op.label(),
                        budget: b,
                    });
                }
            }
        }
    }
    Ok(PlanRun {
        logits: st.logits,
        stats,
        steps: reports,
        fresh_budget: tracker.map(|t| t.fresh),
    })
}

/// Probes the RLWE register a step just wrote and charges the consumption
/// to the step's chain predecessor. Steps whose output lives below the
/// RLWE layer (extraction, dimension/modulus switches, LWE adds, the
/// pooling composites, output) yield `(None, None)`.
fn probe_step(
    op: &StepOp,
    st: &ExecState,
    tr: &mut NoiseTracker,
    budget_of: &dyn Fn(&BfvCiphertext) -> i64,
) -> (Option<i64>, Option<i64>) {
    match op {
        StepOp::Linear { value, .. } => {
            let after = budget_of(st.cur.as_ref().expect("linear output"));
            (Some(after), tr.values[*value].map(|b| b - after))
        }
        StepOp::Pack { .. } => {
            // Packing starts a new chain: its output noise is a sum of
            // PMulted fresh packing-key encryptions, so the fresh budget
            // is the chain's baseline.
            let after = budget_of(st.packed.as_ref().expect("packed output"));
            tr.packed = Some(after);
            (Some(after), Some(tr.fresh - after))
        }
        StepOp::Fbs { .. } => {
            let after = budget_of(st.boot.as_ref().expect("bootstrapped output"));
            let consumed = tr.packed.take().map(|b| b - after);
            tr.boot = Some(after);
            (Some(after), consumed)
        }
        StepOp::S2C { value, .. } => {
            let after = budget_of(st.values[*value].as_ref().expect("s2c output"));
            let consumed = tr.boot.take().map(|b| b - after);
            tr.values[*value] = Some(after);
            (Some(after), consumed)
        }
        _ => (None, None),
    }
}

fn run_step(
    engine: &AthenaEngine,
    secrets: &AthenaSecrets,
    keys: &AthenaEvalKeys,
    n: usize,
    op: &StepOp,
    st: &mut ExecState,
    stats: &mut PipelineStats,
) {
    match op {
        StepOp::Linear {
            value,
            kernel,
            bias,
        } => {
            let ct = st.values[*value].as_ref().expect("producer stored");
            st.cur = Some(engine.linear(ct, kernel, bias, stats));
        }
        StepOp::ModSwitch { value } => {
            let src = match value {
                Some(i) => st.values[*i].as_ref().expect("value stored"),
                None => st.cur.as_ref().expect("pending linear output"),
            };
            st.small = Some(engine.mod_switch_mid(src));
        }
        StepOp::ExtractLwes { positions } => {
            let small = st.small.as_ref().expect("mod-switched ciphertext");
            st.big = engine.sample_extract(small, positions, stats);
        }
        StepOp::DimSwitch { drop_to_t } => {
            let big = std::mem::take(&mut st.big);
            let mut sw = engine.dim_switch(&big, keys);
            if *drop_to_t {
                sw = engine.lwes_to_t(&sw);
            }
            st.acc.extend(sw);
        }
        StepOp::ResidualAdd {
            skip,
            positions,
            mult,
            drop_to_t,
        } => {
            let ct = st.values[*skip].as_ref().expect("skip stored");
            let small = engine.mod_switch_mid(ct);
            let big = engine.sample_extract(&small, positions, stats);
            let mut sw = engine.dim_switch(&big, keys);
            if *drop_to_t {
                sw = engine.lwes_to_t(&sw);
            }
            assert_eq!(sw.len(), st.acc.len(), "skip shape mismatch");
            for (a, s) in st.acc.iter_mut().zip(&sw) {
                *a = engine.lwe_add_scaled(a, s, *mult);
            }
        }
        StepOp::MaxReduce { k, shape } => {
            let lwes = std::mem::take(&mut st.acc);
            let (c, h, w) = (shape[0], shape[1], shape[2]);
            let (oh, ow) = (h / k, w / k);
            // Window-position streams, then a max tree over them.
            let mut streams: Vec<Vec<LweCiphertext>> = Vec::with_capacity(k * k);
            for ky in 0..*k {
                for kx in 0..*k {
                    let mut s = Vec::with_capacity(c * oh * ow);
                    for ci in 0..c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                s.push(lwes[(ci * h + oy * k + ky) * w + ox * k + kx].clone());
                            }
                        }
                    }
                    streams.push(s);
                }
            }
            while streams.len() > 1 {
                let b = streams.pop().expect("len > 1");
                let a = streams.pop().expect("len > 1");
                streams.push(engine.lwe_max(&a, &b, keys, stats));
            }
            st.acc = streams.pop().expect("one stream left");
        }
        StepOp::AvgReduce { k, shape } => {
            let lwes = std::mem::take(&mut st.acc);
            let (c, h, w) = (shape[0], shape[1], shape[2]);
            let (oh, ow) = (h / k, w / k);
            let mut sums = Vec::with_capacity(c * oh * ow);
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc: Option<LweCiphertext> = None;
                        for ky in 0..*k {
                            for kx in 0..*k {
                                let e = &lwes[(ci * h + oy * k + ky) * w + ox * k + kx];
                                acc = Some(match acc {
                                    None => e.clone(),
                                    Some(a) => engine.lwe_add_scaled(&a, e, 1),
                                });
                            }
                        }
                        sums.push(acc.expect("k >= 1"));
                    }
                }
            }
            st.acc = sums;
        }
        StepOp::Pack { slot_of } => {
            let acc = std::mem::take(&mut st.acc);
            let mut slots: Vec<Option<LweCiphertext>> = vec![None; n];
            for (slot, flat) in slot_of.iter().enumerate() {
                if let Some(f) = flat {
                    slots[slot] = Some(acc[*f].clone());
                }
            }
            st.packed = Some(engine.pack(&slots, keys, stats));
            st.slots = slots;
        }
        StepOp::Fbs { lut } => {
            let packed = st.packed.take().expect("packed ciphertext");
            st.boot = Some(engine.fbs(&packed, lut, &st.slots, keys, stats));
        }
        StepOp::S2C { value, .. } => {
            let boot = st.boot.take().expect("bootstrapped ciphertext");
            st.values[*value] = Some(engine.s2c(&boot, keys, stats));
            st.slots.clear();
        }
        StepOp::Output { scale } => {
            let ints = engine.decrypt_lwes(&st.acc, secrets);
            st.logits = ints.iter().map(|&v| v as f64 * scale).collect();
        }
    }
}
