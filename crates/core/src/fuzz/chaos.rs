//! Chaos fuzzing: the fault-injection sweep dimension on top of the
//! model-zoo generator.
//!
//! Each chaos case takes a [`gen_case`](super::gen_case) model, draws one
//! seeded fault from [`FaultPlan::seeded`], and drives the resilient
//! executor three times against the same cached engine/key material:
//!
//! 1. a **baseline** clean run (the reference logits),
//! 2. the **faulted** run under the fault plan — which must either
//!    succeed bit-identically (a fault that lands nowhere observable,
//!    e.g. a sub-deadline sleep) or fail with the *typed*
//!    [`AthenaError`] the fault kind predicts — never a raw panic,
//! 3. a **recovery** clean run with the same sampler seed — which must
//!    be bit-identical to the baseline, proving the quarantined arena
//!    leaked nothing from the faulted attempt into pooled state.
//!
//! Panic faults are additionally replayed through the wrapped
//! [`NoiseSimBackend`](crate::plan::NoiseSimBackend) and
//! [`CountingBackend`](crate::plan::CountingBackend), pinning the
//! composability claim: the injection wrapper is backend-generic, not an
//! encrypted-path special.
//!
//! Seed policy matches the differential sweep: case `i` of a sweep uses
//! generator seed `base + i`, and its fault plan is salted from the same
//! pair, so any failure reproduces from its printed seed alone.

use std::panic::{catch_unwind, AssertUnwindSafe};

use athena_math::sampler::Sampler;

use crate::plan::{
    execute_resilient, AthenaError, CountingBackend, FaultInjectingBackend, FaultKind, FaultPlan,
    FaultSpec, NoiseSimBackend, RunPolicy,
};
use crate::simulate::NoiseSpec;

use super::gen::{gen_case, FuzzCase};
use super::oracle::OracleCtx;

/// Sampler-seed salt of the chaos runs' encryption draws (baseline,
/// faulted, and recovery all start from the same stream, which is what
/// makes the bit-identity assertion meaningful).
const CHAOS_SALT: u64 = 0x63_68_61_6f_73_21_21_21;

/// Configuration of one chaos sweep.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Base generator seed; case `i` uses `seed + i` for both the model
    /// and its fault plan.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: usize,
}

/// Aggregate result of a clean chaos sweep.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Cases run.
    pub cases: usize,
    /// Faults injected per kind: `[panic, corrupt-limb, noise-spike,
    /// slow-step]`.
    pub kind_counts: [usize; 4],
    /// Faulted runs that surfaced a typed error.
    pub typed_errors: usize,
    /// Faulted runs that completed cleanly (the fault landed nowhere
    /// observable).
    pub clean_passes: usize,
}

/// A chaos case that broke an invariant.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// Generator seed of the failing case.
    pub seed: u64,
    /// The injected fault.
    pub fault: FaultSpec,
    /// Which invariant broke, and how.
    pub detail: String,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chaos case seed {} (fault {:?}): {}",
            self.seed, self.fault, self.detail
        )
    }
}

fn fail(case: &FuzzCase, fault: FaultSpec, detail: String) -> Box<ChaosFailure> {
    Box::new(ChaosFailure {
        seed: case.seed,
        fault,
        detail,
    })
}

/// Runs `cfg.cases` seeded chaos cases; returns the first invariant
/// violation, or the aggregate report of a clean sweep.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, Box<ChaosFailure>> {
    let mut ctx = OracleCtx::new();
    let mut report = ChaosReport::default();
    for i in 0..cfg.cases {
        let case = gen_case(cfg.seed + i as u64);
        run_chaos_case(&mut ctx, &case, i, &mut report)?;
        report.cases += 1;
    }
    Ok(report)
}

fn run_chaos_case(
    ctx: &mut OracleCtx,
    case: &FuzzCase,
    index: usize,
    report: &mut ChaosReport,
) -> Result<(), Box<ChaosFailure>> {
    let entry = ctx.entry(&case.params);
    let plan = match crate::plan::try_compile(&entry.engine, &case.model, case.input.shape()) {
        Ok(plan) => plan,
        Err(e) => {
            return Err(fail(
                case,
                FaultSpec::at(0, FaultKind::Panic),
                format!("generator emitted an uncompilable case: {e}"),
            ))
        }
    };
    let faults = FaultPlan::seeded(case.seed, index, plan.step_count());
    let fault = faults.faults[0];
    report.kind_counts[match fault.kind {
        FaultKind::Panic => 0,
        FaultKind::CorruptLimb => 1,
        FaultKind::NoiseSpike { .. } => 2,
        FaultKind::SlowStep { .. } => 3,
    }] += 1;

    let clean_run = |entry: &super::oracle::EngineEntry| {
        let mut sampler = Sampler::from_seed(case.seed ^ CHAOS_SALT);
        execute_resilient(
            &entry.engine,
            &entry.secrets,
            &entry.keys,
            &plan,
            &case.input,
            &mut sampler,
            &RunPolicy::default(),
            1,
            None,
        )
    };
    let baseline = clean_run(entry)
        .map_err(|e| fail(case, fault, format!("baseline clean run failed: {e}")))?;

    // The faulted run: the probe is forced on so limb corruption is
    // observable, and the whole attempt sits inside `catch_unwind` —
    // an escaping panic is itself the bug the harness exists to catch.
    let policy = RunPolicy::default()
        .with_probe()
        .with_faults(faults.clone());
    let mut sampler = Sampler::from_seed(case.seed ^ CHAOS_SALT);
    let faulted = catch_unwind(AssertUnwindSafe(|| {
        execute_resilient(
            &entry.engine,
            &entry.secrets,
            &entry.keys,
            &plan,
            &case.input,
            &mut sampler,
            &policy,
            1,
            None,
        )
    }))
    .map_err(|_| {
        fail(
            case,
            fault,
            "a raw panic escaped the resilient executor".to_string(),
        )
    })?;

    match (&fault.kind, &faulted) {
        // A panic fault must surface typed, naming a step.
        (FaultKind::Panic, Err(AthenaError::StepPanicked { payload, .. })) => {
            if !payload.contains("injected fault") {
                return Err(fail(case, fault, format!("wrong payload: {payload}")));
            }
            report.typed_errors += 1;
        }
        (FaultKind::Panic, Err(AthenaError::PoolPoisoned { .. })) => report.typed_errors += 1,
        // A 10k+-bit spike always dwarfs the budget: typed exhaustion,
        // wherever in the chain it was injected.
        (FaultKind::NoiseSpike { .. }, Err(AthenaError::NoiseExhausted(_))) => {
            report.typed_errors += 1
        }
        // Corruption collapses the measured budget when it lands on an
        // RLWE value; a fault armed past the last RLWE producer lands
        // nowhere and the run must then be bit-identical.
        (FaultKind::CorruptLimb, Err(AthenaError::NoiseExhausted(_))) => report.typed_errors += 1,
        (FaultKind::CorruptLimb | FaultKind::SlowStep { .. }, Ok(run)) => {
            if run.logits != baseline.logits {
                return Err(fail(
                    case,
                    fault,
                    "an unobserved fault still changed the logits".to_string(),
                ));
            }
            report.clean_passes += 1;
        }
        (kind, outcome) => {
            let got = match outcome {
                Ok(_) => "Ok".to_string(),
                Err(e) => format!("{} ({e})", e.kind()),
            };
            return Err(fail(
                case,
                fault,
                format!("fault kind {kind:?} produced unexpected outcome {got}"),
            ));
        }
    }

    // Recovery: a clean run on the same (quarantined) engine must be
    // bit-identical to the baseline.
    let recovered = clean_run(entry)
        .map_err(|e| fail(case, fault, format!("recovery clean run failed: {e}")))?;
    if recovered.logits != baseline.logits {
        return Err(fail(
            case,
            fault,
            "recovery run diverged from the baseline: the faulted attempt leaked state".to_string(),
        ));
    }

    // Composability: a panic fault fires identically through the
    // simulation and counting backends.
    if matches!(fault.kind, FaultKind::Panic) {
        for (name, escaped) in [
            ("sim", sim_panics(case, &plan, &faults)),
            (
                "counting",
                counting_panics(&entry.engine, &plan, case, &faults),
            ),
        ] {
            if !escaped {
                return Err(fail(
                    case,
                    fault,
                    format!("panic fault did not fire through the {name} backend"),
                ));
            }
        }
    }
    Ok(())
}

/// Whether the fault plan's panic fires when the plan is driven through
/// the wrapped [`NoiseSimBackend`] (it must — the wrapper is generic).
fn sim_panics(case: &FuzzCase, plan: &crate::plan::ExecutionPlan, faults: &FaultPlan) -> bool {
    let mut sampler = Sampler::from_seed(case.seed ^ CHAOS_SALT);
    let exact = NoiseSpec { sigma: 0.0 };
    let backend = NoiseSimBackend::new(plan, &exact, &mut sampler);
    drive_wrapped(backend, plan, case, faults)
}

/// Same, through the value-free [`CountingBackend`].
fn counting_panics(
    engine: &crate::pipeline::AthenaEngine,
    plan: &crate::plan::ExecutionPlan,
    case: &FuzzCase,
    faults: &FaultPlan,
) -> bool {
    drive_wrapped(CountingBackend::new(engine), plan, case, faults)
}

fn drive_wrapped<B>(
    inner: B,
    plan: &crate::plan::ExecutionPlan,
    case: &FuzzCase,
    faults: &FaultPlan,
) -> bool
where
    B: crate::plan::PlanBackend,
    B::Rlwe: crate::plan::FaultTarget,
{
    catch_unwind(AssertUnwindSafe(|| {
        let mut backend = FaultInjectingBackend::new(inner, faults, 1, None);
        crate::plan::drive_plain(&mut backend, plan, &case.input)
    }))
    .is_err()
}
