//! Deterministic differential fuzzing across the plan backends.
//!
//! A seeded model-zoo generator ([`gen_case`]) over the in-repo xoshiro
//! PRNG emits random-but-valid [`athena_nn::qmodel::QModel`]
//! architectures — conv / pool / residual mixes, random shapes, random
//! power-of-two quantization scales, both packing strategies, and random
//! reduced parameter sets — and every case is run through four oracles
//! ([`run_case`]):
//!
//! 1. the plain-Q integer reference (`QModel::forward`),
//! 2. the legacy fast simulation path (`simulate_inference` at σ = 0),
//! 3. the plan-driven [`crate::plan::NoiseSimBackend`] at σ = 0,
//! 4. the real [`crate::plan::EncryptedBackend`] at the case's reduced
//!    parameters.
//!
//! Oracles 2 and 3 must be **bit-equal** to the reference (power-of-two
//! scales make the final dequantization exact in `f64`); oracle 4 must
//! stay within the propagated worst-case `e_ms` bound
//! ([`DeviationBound`]) of the reference — the same §3.2.2 noise budget
//! the generator uses to keep accumulators inside the plaintext modulus.
//!
//! A failure is [`shrink`]-minimized (drop layers, halve channels, strip
//! skips/biases/activations — greedily, re-checking that the minimized
//! case still fails) and pinned as a permanent regression case in
//! `tests/fuzz_corpus/` via the text format of [`corpus`]. The CI smoke
//! leg replays a fixed-seed sweep (`tests/fuzz_smoke.rs`) plus the whole
//! corpus (`tests/fuzz_corpus.rs`) under both `ATHENA_THREADS` legs.
//!
//! Seed policy: case `i` of a sweep uses generator seed `base + i`; every
//! derived sampler (key material, encryption randomness) is salted from
//! the case seed, so any failure reproduces from its printed seed alone.
//!
//! An orthogonal sweep dimension is chaos fuzzing ([`run_chaos`]): the
//! same generated cases run under seeded fault plans
//! ([`crate::plan::FaultPlan`]) through the resilient executor, pinning
//! the serving path's typed-error and quarantine-recovery invariants
//! (see the module docs of [`chaos`](self)).

mod bound;
mod chaos;
pub mod corpus;
mod gen;
mod oracle;
mod shrink;

pub use bound::{e_ms_bound, DeviationBound};
pub use chaos::{run_chaos, ChaosConfig, ChaosFailure, ChaosReport};
pub use gen::{gen_case, CaseParams, FuzzCase};
pub use oracle::{run_case, CaseOutcome, FuzzFailure, Oracle, OracleCtx};
pub use shrink::shrink;

/// Configuration of one fuzzing sweep.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Base generator seed; case `i` uses `seed + i`.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: usize,
    /// Whether to run the encrypted oracle (the expensive one) on every
    /// case. The three plaintext oracles always run.
    pub encrypted: bool,
}

/// Aggregate result of a clean sweep.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases run (all four-oracle agreeing).
    pub cases: usize,
    /// Cases that ran the encrypted oracle.
    pub encrypted_runs: usize,
    /// Worst observed encrypted deviation from the σ = 0 reference, in
    /// dequantized logit units.
    pub max_encrypted_dev: f64,
    /// The tolerance in force for the case with the worst deviation.
    pub tolerance_at_max: f64,
    /// Model-shape coverage counters: `[conv, fc, maxpool, avgpool,
    /// residual-skip]` node totals across the sweep.
    pub op_counts: [usize; 5],
    /// Cases compiled per packing method: `[column, bsgs]`.
    pub packing_counts: [usize; 2],
}

/// Runs a sweep of `cfg.cases` seeded cases. On the first failing case,
/// shrinks it and returns the minimized failure; a clean sweep returns
/// the aggregate report.
pub fn run_fuzz(cfg: &FuzzConfig) -> Result<FuzzReport, Box<FuzzFailure>> {
    let mut ctx = OracleCtx::new();
    let mut report = FuzzReport::default();
    for i in 0..cfg.cases {
        let case = gen_case(cfg.seed + i as u64);
        match run_case(&mut ctx, &case, cfg.encrypted) {
            Ok(outcome) => {
                report.cases += 1;
                if cfg.encrypted {
                    report.encrypted_runs += 1;
                    if outcome.encrypted_dev > report.max_encrypted_dev {
                        report.max_encrypted_dev = outcome.encrypted_dev;
                        report.tolerance_at_max = outcome.tolerance;
                    }
                }
                for node in &case.model.nodes {
                    use athena_nn::qmodel::QOp;
                    match &node.op {
                        QOp::Linear(l) if !l.is_fc => report.op_counts[0] += 1,
                        QOp::Linear(_) => report.op_counts[1] += 1,
                        QOp::MaxPool { .. } => report.op_counts[2] += 1,
                        QOp::AvgPool { .. } => report.op_counts[3] += 1,
                    }
                    if node.skip.is_some() {
                        report.op_counts[4] += 1;
                    }
                }
                match case.params.packing {
                    crate::pipeline::PackingMethod::Column => report.packing_counts[0] += 1,
                    crate::pipeline::PackingMethod::Bsgs => report.packing_counts[1] += 1,
                }
            }
            Err(failure) => {
                let minimized = shrink(&mut ctx, *failure, cfg.encrypted);
                return Err(Box::new(minimized));
            }
        }
    }
    Ok(report)
}
