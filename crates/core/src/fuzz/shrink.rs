//! Greedy failure minimization: repeatedly tries structurally smaller
//! variants of a failing case and keeps the first that still fails, until
//! no candidate does.

use std::panic::{catch_unwind, AssertUnwindSafe};

use athena_nn::qmodel::{Activation, QOp, QStats};
use athena_nn::tensor::ITensor;

use crate::plan::validate_model;

use super::gen::FuzzCase;
use super::oracle::{run_case, FuzzFailure, Oracle, OracleCtx};

/// Minimizes `failure`: greedily applies drop-suffix, drop-first-layer,
/// halve-output-channels, drop-skip, zero-bias, identity-activation, and
/// unit-scale transforms, re-running the oracles after each and keeping
/// any variant that still fails (in any way). Candidates that are no
/// longer valid models are discarded, so the minimized case is always a
/// genuine reproducer.
pub fn shrink(ctx: &mut OracleCtx, failure: FuzzFailure, encrypted: bool) -> FuzzFailure {
    let mut cur = failure;
    loop {
        let mut improved = false;
        for case in candidates(&cur.case) {
            if validate_model(&case.model, case.input.shape(), case.params.n).is_err() {
                continue;
            }
            match catch_unwind(AssertUnwindSafe(|| run_case(ctx, &case, encrypted))) {
                Ok(Ok(_)) => {}
                Ok(Err(f)) => {
                    cur = *f;
                    improved = true;
                    break;
                }
                Err(payload) => {
                    // A panic on a still-valid model is itself the bug; keep
                    // the reproducer with the panic message as the detail.
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    cur = FuzzFailure {
                        case,
                        oracle: Oracle::Encrypted,
                        detail: format!("panic during oracle run: {msg}"),
                    };
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return cur;
        }
    }
}

fn with_model(case: &FuzzCase, model: athena_nn::qmodel::QModel, input: ITensor) -> FuzzCase {
    FuzzCase {
        seed: case.seed,
        params: case.params,
        model,
        input,
    }
}

/// Structurally smaller variants, most aggressive first. Every candidate
/// differs from `case`; validity is the caller's problem.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let model = &case.model;
    let n = model.nodes.len();
    let mut out = Vec::new();

    // Keep only a prefix whose final node is linear (shortest first).
    for len in 1..n {
        if matches!(model.nodes[len - 1].op, QOp::Linear(_)) {
            let mut m = model.clone();
            m.nodes.truncate(len);
            out.push(with_model(case, m, case.input.clone()));
        }
    }

    // Drop the first node, re-rooting the input at its traced output.
    if n > 1 {
        let can_reroot = model.nodes[1..]
            .iter()
            .all(|nd| nd.input >= 1 && nd.skip.is_none_or(|(v, _)| v >= 1));
        if can_reroot {
            let mut stats = QStats::default();
            let (_, values) = model.forward_traced(&case.input, None, &mut stats);
            let mut m = model.clone();
            m.nodes.remove(0);
            for nd in &mut m.nodes {
                nd.input -= 1;
                if let Some((v, mult)) = nd.skip {
                    nd.skip = Some((v - 1, mult));
                }
            }
            out.push(with_model(case, m, values[1].clone()));
        }
    }

    // Halve a node's output channels (slicing consumers to match).
    for ni in 0..n {
        if let Some(c) = halve_cout(case, ni) {
            out.push(c);
        }
    }

    // Local simplifications: drop skips, zero biases, strip activations
    // and scales.
    for ni in 0..n {
        if model.nodes[ni].skip.is_some() {
            let mut m = model.clone();
            m.nodes[ni].skip = None;
            out.push(with_model(case, m, case.input.clone()));
        }
        if let QOp::Linear(l) = &model.nodes[ni].op {
            if l.bias.iter().any(|&b| b != 0) {
                let mut m = model.clone();
                if let QOp::Linear(l) = &mut m.nodes[ni].op {
                    l.bias.iter_mut().for_each(|b| *b = 0);
                }
                out.push(with_model(case, m, case.input.clone()));
            }
            if l.act != Activation::Identity {
                let mut m = model.clone();
                if let QOp::Linear(l) = &mut m.nodes[ni].op {
                    l.act = Activation::Identity;
                }
                out.push(with_model(case, m, case.input.clone()));
            }
            if l.in_scale != 1.0 || l.w_scale != 1.0 || l.out_scale != 1.0 {
                let mut m = model.clone();
                if let QOp::Linear(l) = &mut m.nodes[ni].op {
                    l.in_scale = 1.0;
                    l.w_scale = 1.0;
                    l.out_scale = 1.0;
                }
                out.push(with_model(case, m, case.input.clone()));
            }
        }
    }
    if case.model.input_scale != 1.0 {
        let mut m = model.clone();
        m.input_scale = 1.0;
        out.push(with_model(case, m, case.input.clone()));
    }

    out
}

/// Halves node `ni`'s output channels and slices every downstream
/// consumer's weights to match; channel halving propagates through pools
/// (channel-preserving), and skips whose two endpoints now disagree on
/// channel count are dropped.
fn halve_cout(case: &FuzzCase, ni: usize) -> Option<FuzzCase> {
    let model = &case.model;
    let keep = match &model.nodes[ni].op {
        QOp::Linear(l) if l.weight.shape()[0] >= 2 => l.weight.shape()[0] / 2,
        _ => return None,
    };
    let mut stats = QStats::default();
    let (_, values) = model.forward_traced(&case.input, None, &mut stats);
    let mut m = model.clone();

    if let QOp::Linear(l) = &mut m.nodes[ni].op {
        let (c_in, k) = (l.weight.shape()[1], l.weight.shape()[2]);
        let per = c_in * k * k;
        l.weight = ITensor::from_vec(&[keep, c_in, k, k], l.weight.data()[..keep * per].to_vec());
        l.bias.truncate(keep);
    }

    // Which values now have half their original channels: node ni's
    // output, and transitively every pool output fed from one.
    let mut halved = vec![false; model.nodes.len() + 1];
    halved[ni + 1] = true;
    for nj in (ni + 1)..m.nodes.len() {
        let input_halved = halved[m.nodes[nj].input];
        let in_val = m.nodes[nj].input;
        match &mut m.nodes[nj].op {
            QOp::Linear(l) if input_halved => {
                let old_c = values[in_val].shape()[0];
                let keep_c = old_c / 2;
                let co = l.weight.shape()[0];
                if l.is_fc {
                    let flat_old = l.weight.shape()[1];
                    let flat_new = keep_c * (flat_old / old_c);
                    let mut data = Vec::with_capacity(co * flat_new);
                    for c in 0..co {
                        data.extend_from_slice(
                            &l.weight.data()[c * flat_old..c * flat_old + flat_new],
                        );
                    }
                    l.weight = ITensor::from_vec(&[co, flat_new, 1, 1], data);
                } else {
                    let (cin_old, k) = (l.weight.shape()[1], l.weight.shape()[2]);
                    let keep_cin = cin_old / 2;
                    let mut data = Vec::with_capacity(co * keep_cin * k * k);
                    for c in 0..co {
                        let base = c * cin_old * k * k;
                        data.extend_from_slice(&l.weight.data()[base..base + keep_cin * k * k]);
                    }
                    l.weight = ITensor::from_vec(&[co, keep_cin, k, k], data);
                }
            }
            QOp::MaxPool { .. } | QOp::AvgPool { .. } if input_halved => {
                halved[nj + 1] = true;
            }
            _ => {}
        }
    }
    for nj in 0..m.nodes.len() {
        if let Some((v, _)) = m.nodes[nj].skip {
            if halved[v] != halved[nj + 1] {
                m.nodes[nj].skip = None;
            }
        }
    }
    Some(with_model(case, m, case.input.clone()))
}
