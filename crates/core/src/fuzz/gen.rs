//! The deterministic case generator: random-but-valid models, inputs,
//! and reduced parameter sets from one `u64` seed.

use athena_fhe::params::BfvParams;
use athena_math::prime::ntt_primes;
use athena_math::prng::Prng;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QStats, QuantConfig};
use athena_nn::tensor::ITensor;

use crate::pipeline::PackingMethod;
use crate::plan::validate_model;

use super::bound::propagate;

/// A reduced parameter configuration a fuzz case runs under. `t = 257`
/// and five 50-bit limbs are fixed (smaller `t` shrinks the FBS chain
/// enough to stay decryptable; fewer limbs would exhaust the ~190-bit
/// worst chain the FBS consumes at `t = 257`); everything else varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseParams {
    /// Ring degree (64 or 128).
    pub n: usize,
    /// LWE dimension after dimension switch (16 or 32).
    pub lwe_n: usize,
    /// LWE key-switch decomposition base log (4 or 5).
    pub ks_base_log: u32,
    /// Packing strategy.
    pub packing: PackingMethod,
}

impl CaseParams {
    /// Materializes the BFV parameter set (limb primes are regenerated
    /// deterministically from the degree).
    pub fn bfv(&self) -> BfvParams {
        BfvParams {
            n: self.n,
            q_primes: ntt_primes(50, self.n, 5),
            t: 257,
            lwe_n: self.lwe_n,
            sigma: 3.2,
            lwe_ks_base_log: self.ks_base_log,
        }
    }

    /// A small stable fingerprint, used to key the oracle's engine/key
    /// cache and to salt key-generation sampler seeds.
    pub fn fingerprint(&self) -> u64 {
        let packing = match self.packing {
            PackingMethod::Column => 0u64,
            PackingMethod::Bsgs => 1u64,
        };
        (self.n as u64) << 32
            | (self.lwe_n as u64) << 16
            | u64::from(self.ks_base_log) << 8
            | packing
    }
}

/// One generated fuzz case: a model, an input, and the parameters to run
/// it under. `seed` reproduces the whole case through [`gen_case`].
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Generator seed (0 for hand-built / corpus-loaded cases).
    pub seed: u64,
    /// Parameter configuration.
    pub params: CaseParams,
    /// The model.
    pub model: QModel,
    /// The input tensor.
    pub input: ITensor,
}

fn pick<T: Copy>(r: &mut Prng, choices: &[T]) -> T {
    choices[r.next_below(choices.len() as u64) as usize]
}

const SCALES: [f64; 4] = [0.25, 0.5, 1.0, 2.0];
const ACTS: [Activation; 4] = [
    Activation::Identity,
    Activation::ReLU,
    Activation::Sigmoid,
    Activation::Gelu,
];

/// Generates the case for `seed`: draws architectures until one passes
/// the validity gates (compilable at the drawn parameters, and inside
/// the `t = 257` accumulator headroom *including* the propagated
/// worst-case `e_ms` deviation, so the encrypted oracle is meaningful).
/// Deterministic: same seed, same case, independent of thread count.
pub fn gen_case(seed: u64) -> FuzzCase {
    let mut r = Prng::seed_from_u64(seed ^ 0xa7_4e_9a_f0_22_33_44_55);
    loop {
        if let Some(case) = try_gen(seed, &mut r) {
            return case;
        }
    }
}

fn try_gen(seed: u64, r: &mut Prng) -> Option<FuzzCase> {
    let params = CaseParams {
        n: if r.next_bool() { 128 } else { 64 },
        lwe_n: if r.next_bool() { 32 } else { 16 },
        ks_base_log: 4 + r.next_below(2) as u32,
        packing: if r.next_bool() {
            PackingMethod::Bsgs
        } else {
            PackingMethod::Column
        },
    };
    let cfg = QuantConfig::new(2 + r.next_below(3) as u32, 3 + r.next_below(3) as u32);
    let (w_max, a_max) = (cfg.w_max(), cfg.a_max());

    // Input shape: small square images, 1–3 channels.
    let c0 = 1 + r.next_below(3) as usize;
    let h0 = 2 + r.next_below(5) as usize;
    let mut shape = [c0, h0, h0];
    let n_nodes = 1 + r.next_below(4) as usize;

    let mut nodes: Vec<QNode> = Vec::with_capacity(n_nodes);
    // Shapes of every value (index 0 = input) for skip-candidate search.
    let mut value_shapes: Vec<[usize; 3]> = vec![shape];
    for ni in 0..n_nodes {
        let is_last = ni == n_nodes - 1;
        let flat: usize = shape.iter().product();
        // Node kind: the final node must be linear; pools need room.
        let kind = if is_last {
            if flat <= 24 && r.next_bool() {
                1 // fc
            } else {
                0 // conv
            }
        } else {
            match r.next_below(10) {
                0..=4 => 0,                  // conv
                5..=6 if flat <= 24 => 1,    // fc
                7..=8 if shape[1] >= 2 => 2, // maxpool
                _ if shape[1] >= 2 => 3,     // avgpool
                _ => 0,
            }
        };
        let op = match kind {
            0 => {
                let padding = r.next_below(2) as usize;
                let extent = shape[1] + 2 * padding;
                let k = (1 + r.next_below(3) as usize).min(extent);
                let stride = if shape[1] >= 4 && r.next_below(4) == 0 {
                    2
                } else {
                    1
                };
                let c_out = 1 + r.next_below(4) as usize;
                let c_in = shape[0];
                let weight = ITensor::from_vec(
                    &[c_out, c_in, k, k],
                    (0..c_out * c_in * k * k)
                        .map(|_| r.next_i64_in(-w_max, w_max))
                        .collect(),
                );
                let bias = (0..c_out).map(|_| r.next_i64_in(-a_max, a_max)).collect();
                let oh = (shape[1] + 2 * padding - k) / stride + 1;
                shape = [c_out, oh, oh];
                QOp::Linear(QLinear {
                    weight,
                    bias,
                    stride,
                    padding,
                    is_fc: false,
                    act: pick(r, &ACTS),
                    in_scale: pick(r, &SCALES),
                    w_scale: pick(r, &SCALES),
                    out_scale: pick(r, &SCALES),
                })
            }
            1 => {
                let c_out = 1 + r.next_below(4) as usize;
                let weight = ITensor::from_vec(
                    &[c_out, flat, 1, 1],
                    (0..c_out * flat)
                        .map(|_| r.next_i64_in(-w_max, w_max))
                        .collect(),
                );
                let bias = (0..c_out).map(|_| r.next_i64_in(-a_max, a_max)).collect();
                shape = [c_out, 1, 1];
                QOp::Linear(QLinear {
                    weight,
                    bias,
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: pick(r, &ACTS),
                    in_scale: pick(r, &SCALES),
                    w_scale: pick(r, &SCALES),
                    out_scale: pick(r, &SCALES),
                })
            }
            k_id => {
                // Pool kernel 2, or 3 when it still leaves an output;
                // non-dividing extents (h % k != 0) are deliberately
                // allowed — floor windows are an edge case worth fuzzing.
                let k = if shape[1] >= 3 && r.next_bool() { 3 } else { 2 };
                shape = [shape[0], shape[1] / k, shape[2] / k];
                if k_id == 2 {
                    QOp::MaxPool { k }
                } else {
                    QOp::AvgPool { k }
                }
            }
        };
        // Residual skip: linear nodes only (pools ignore skips in both
        // the reference and the plan), onto any earlier value with a
        // matching element count.
        let skip = if matches!(op, QOp::Linear(_)) && r.next_below(4) == 0 {
            let want: usize = shape.iter().product();
            let candidates: Vec<usize> = value_shapes
                .iter()
                .enumerate()
                .filter(|(_, s)| s.iter().product::<usize>() == want)
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                None
            } else {
                let v = pick(r, &candidates);
                let mult = pick(r, &[-2i64, -1, 1, 2]);
                Some((v, mult))
            }
        } else {
            None
        };
        nodes.push(QNode {
            op,
            input: ni,
            skip,
        });
        value_shapes.push(shape);
    }

    let model = QModel {
        nodes,
        input_scale: pick(r, &SCALES),
        cfg,
    };
    let input_shape = value_shapes[0];
    let input = ITensor::from_vec(
        &input_shape,
        (0..input_shape.iter().product())
            .map(|_| r.next_i64_in(-a_max, a_max))
            .collect(),
    );

    // Gate 1: compilable at the drawn ring degree (shape fit, layouts).
    if validate_model(&model, &input_shape, params.n).is_err() {
        return None;
    }

    // Gate 2: accumulator headroom at t = 257. Every accumulator that
    // lives at the plaintext level must stay inside (-t/2, t/2) even
    // after the worst-case propagated e_ms deviation, and the max-pool
    // diff trees need twice the operand magnitude.
    let mut stats = QStats::default();
    let (logits, _) = model.forward_traced(&input, None, &mut stats);
    if logits.is_empty() {
        return None;
    }
    let dev = propagate(&model, params.lwe_n);
    let half_t = 126.0; // (t-1)/2 minus a safety notch
    for (ni, node) in model.nodes.iter().enumerate() {
        let acc = stats.max_acc.get(ni).copied().unwrap_or(0) as f64;
        if acc + dev.per_node_acc[ni] > half_t {
            return None;
        }
        if let QOp::MaxPool { k } = node.op {
            let e = super::bound::e_ms_bound(params.lwe_n);
            let operand = a_max as f64 + dev.per_value[node.input] + (k * k) as f64 * e;
            if 2.0 * operand > half_t {
                return None;
            }
        }
    }

    Some(FuzzCase {
        seed,
        params,
        model,
        input,
    })
}
