//! The four differential oracles and the engine/key cache they share.

use athena_math::sampler::Sampler;

use crate::pipeline::{AthenaEngine, AthenaEvalKeys, AthenaSecrets};
use crate::plan::{execute, execute_sim, try_compile};
use crate::simulate::{simulate_inference, NoiseSpec};

use super::bound::propagate;
use super::gen::{CaseParams, FuzzCase};

/// Sampler-seed salts, one per randomness consumer, all derived from the
/// case seed (or the parameter fingerprint for key material) so a failure
/// reproduces from its printed seed alone.
const KEYGEN_SALT: u64 = 0x6b_65_79_67_65_6e_21_21;
const FAST_SIM_SALT: u64 = 0x66_61_73_74_73_69_6d_21;
const PLAN_SIM_SALT: u64 = 0x70_6c_61_6e_73_69_6d_21;
const ENCRYPT_SALT: u64 = 0x65_6e_63_72_79_70_74_21;

/// Which oracle a case failed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// `try_compile` rejected a model the reference executes fine.
    Compile,
    /// `simulate_inference` at σ = 0 diverged from `QModel::forward`.
    FastSim,
    /// Plan-driven `NoiseSimBackend` at σ = 0 diverged from the reference.
    PlanSim,
    /// `EncryptedBackend` exceeded the propagated `e_ms` logit bound.
    Encrypted,
}

impl std::fmt::Display for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Oracle::Compile => "compile",
            Oracle::FastSim => "fast-sim",
            Oracle::PlanSim => "plan-sim",
            Oracle::Encrypted => "encrypted",
        })
    }
}

/// A failing case: which oracle disagreed and how.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The (possibly minimized) failing case.
    pub case: FuzzCase,
    /// The oracle that disagreed.
    pub oracle: Oracle,
    /// Human-readable discrepancy description.
    pub detail: String,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fuzz case seed {} failed the {} oracle: {}",
            self.case.seed, self.oracle, self.detail
        )
    }
}

/// Result of a clean all-oracle run of one case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The reference logits.
    pub logits: Vec<f64>,
    /// Max |encrypted − reference| logit deviation (0 when the encrypted
    /// oracle was skipped).
    pub encrypted_dev: f64,
    /// The `e_ms` tolerance that was in force.
    pub tolerance: f64,
}

pub(super) struct EngineEntry {
    pub(super) engine: AthenaEngine,
    pub(super) secrets: AthenaSecrets,
    pub(super) keys: AthenaEvalKeys,
}

/// Caches one engine + key set per distinct [`CaseParams`] across a sweep
/// (key generation dominates per-case cost otherwise). Key material is
/// seeded from the parameter fingerprint, so a sweep's keys — and
/// therefore its encrypted transcripts — are reproducible in isolation.
pub struct OracleCtx {
    engines: Vec<(u64, EngineEntry)>,
}

impl Default for OracleCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl OracleCtx {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            engines: Vec::new(),
        }
    }

    pub(super) fn entry(&mut self, params: &CaseParams) -> &EngineEntry {
        let fp = params.fingerprint();
        if let Some(pos) = self.engines.iter().position(|(f, _)| *f == fp) {
            return &self.engines[pos].1;
        }
        let engine = AthenaEngine::with_packing(params.bfv(), params.packing);
        let mut sampler = Sampler::from_seed(fp ^ KEYGEN_SALT);
        let (secrets, keys) = engine.keygen(&mut sampler);
        self.engines.push((
            fp,
            EngineEntry {
                engine,
                secrets,
                keys,
            },
        ));
        &self.engines.last().expect("just pushed").1
    }
}

fn logit_diff(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    Some(
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max),
    )
}

fn first_mismatch(reference: &[f64], got: &[f64]) -> String {
    if reference.len() != got.len() {
        return format!(
            "logit count mismatch: reference {} vs {}",
            reference.len(),
            got.len()
        );
    }
    for (i, (r, g)) in reference.iter().zip(got).enumerate() {
        if r != g {
            return format!("logit {i}: reference {r} vs {g}");
        }
    }
    "no mismatch".into()
}

/// Runs `case` through the oracles: the plain integer reference, the fast
/// simulation at σ = 0 (must be bit-equal), the plan-driven simulation at
/// σ = 0 (must be bit-equal), and — when `encrypted` — the real
/// encrypted executor at the case's parameters (must stay inside the
/// propagated `e_ms` logit bound).
pub fn run_case(
    ctx: &mut OracleCtx,
    case: &FuzzCase,
    encrypted: bool,
) -> Result<CaseOutcome, Box<FuzzFailure>> {
    let exact = NoiseSpec { sigma: 0.0 };
    let reference = case.model.forward(&case.input);

    // Oracle 2: the legacy fast simulation, σ = 0 → bit-equal.
    let mut sampler = Sampler::from_seed(case.seed ^ FAST_SIM_SALT);
    let fast = simulate_inference(&case.model, &case.input, &exact, &mut sampler);
    if fast.logits != reference {
        return Err(Box::new(FuzzFailure {
            case: case.clone(),
            oracle: Oracle::FastSim,
            detail: first_mismatch(&reference, &fast.logits),
        }));
    }

    // Oracle 3: the plan-driven simulation, σ = 0 → bit-equal. A model
    // the reference executes but the planner rejects is itself a failure.
    let entry = ctx.entry(&case.params);
    let plan = match try_compile(&entry.engine, &case.model, case.input.shape()) {
        Ok(plan) => plan,
        Err(e) => {
            return Err(Box::new(FuzzFailure {
                case: case.clone(),
                oracle: Oracle::Compile,
                detail: e.to_string(),
            }))
        }
    };
    let mut sampler = Sampler::from_seed(case.seed ^ PLAN_SIM_SALT);
    let plan_sim = execute_sim(&plan, &case.input, &exact, &mut sampler);
    if plan_sim.logits != reference {
        return Err(Box::new(FuzzFailure {
            case: case.clone(),
            oracle: Oracle::PlanSim,
            detail: first_mismatch(&reference, &plan_sim.logits),
        }));
    }

    // Oracle 4: the real thing, held to the documented e_ms bound.
    let tolerance = propagate(&case.model, case.params.lwe_n).logits;
    let mut encrypted_dev = 0.0f64;
    if encrypted {
        let mut sampler = Sampler::from_seed(case.seed ^ ENCRYPT_SALT);
        let run = execute(
            &entry.engine,
            &entry.secrets,
            &entry.keys,
            &plan,
            &case.input,
            &mut sampler,
        );
        match logit_diff(&reference, &run.logits) {
            Some(dev) if dev <= tolerance => encrypted_dev = dev,
            Some(dev) => {
                return Err(Box::new(FuzzFailure {
                    case: case.clone(),
                    oracle: Oracle::Encrypted,
                    detail: format!(
                        "max logit deviation {dev} exceeds e_ms tolerance {tolerance} ({})",
                        first_mismatch(&reference, &run.logits)
                    ),
                }))
            }
            None => {
                return Err(Box::new(FuzzFailure {
                    case: case.clone(),
                    oracle: Oracle::Encrypted,
                    detail: first_mismatch(&reference, &run.logits),
                }))
            }
        }
    }

    Ok(CaseOutcome {
        logits: reference,
        encrypted_dev,
        tolerance,
    })
}
