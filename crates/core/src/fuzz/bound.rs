//! The documented `e_ms` deviation bound the encrypted oracle is held
//! to, and the headroom budget the generator enforces.
//!
//! Every `q_mid → t` LWE drop injects a rounding error
//! `e_ms = ⌊q̃·v/q_mid⌉ − ...` bounded in magnitude by `(‖s‖₁ + 1)/2`
//! plus the dimension-switch key-switch noise (negligible at `t/q_mid ≈
//! 2⁻⁴²` but budgeted as a constant here). The bound below propagates a
//! worst-case per-value integer deviation through the model exactly the
//! way the executor accumulates it:
//!
//! * a **non-final linear** layer's accumulator deviates by at most
//!   `‖W_row‖₁ · dev_in + |mult| · dev_skip`, gains one `e_ms` at the
//!   drop, and the FBS remap (clamped, Lipschitz-bounded activation over
//!   `v · in_scale · w_scale / out_scale`, rounded) turns that into the
//!   next value's deviation;
//! * the **final linear** layer's accumulator stays at `q_mid` (no
//!   `e_ms`), so its logits deviate by the propagated input deviation
//!   through the weights, dequantized;
//! * **max pooling** is a max tree of 1-Lipschitz rounds, each paying a
//!   fresh `e_ms` on re-extraction (`k² − 1` rounds bounds the tree);
//! * **average pooling** sums `k²` LWEs (deviations add), pays one
//!   `e_ms` per summed LWE, and divides (with rounding) in the next LUT.
//!
//! Every intermediate value is clamped to `[-a_max, a_max]`, so a
//! deviation can never exceed `2·a_max`.

use athena_nn::qmodel::{Activation, QModel, QOp};

/// Worst-case magnitude of one `q_mid → t` drop's injected error, in
/// integer (plaintext) units: the mod-switch rounding bound
/// `(‖s‖₁ + 1)/2 ≤ (lwe_n + 1)/2` for a ternary secret, plus a constant
/// 2 covering the dimension-switch key-switch noise scaled down by
/// `t/q_mid`.
pub fn e_ms_bound(lwe_n: usize) -> f64 {
    (lwe_n as f64 + 1.0) / 2.0 + 2.0
}

/// Lipschitz constant of an activation (slope bound over ℝ).
fn lipschitz(act: Activation) -> f64 {
    match act {
        Activation::Identity | Activation::ReLU => 1.0,
        Activation::Sigmoid => 0.25,
        // |Gelu'(x)| peaks at ≈ 1.129 near x ≈ 1.
        Activation::Gelu => 1.13,
    }
}

/// Propagated worst-case deviations of an encrypted run from the exact
/// integer reference, in integer units per value and logit units at the
/// output.
#[derive(Debug, Clone)]
pub struct DeviationBound {
    /// Per-value integer deviation bound (index 0 = input, deviation 0).
    pub per_value: Vec<f64>,
    /// Per-node accumulator deviation bound *including* the node's own
    /// `e_ms` where one is paid — the margin the accumulator headroom
    /// check must add on top of the exact `max_acc` statistic.
    pub per_node_acc: Vec<f64>,
    /// Deviation bound on the dequantized output logits.
    pub logits: f64,
}

/// Propagates the worst-case `e_ms` deviation bound through `model` for
/// an engine with LWE dimension `lwe_n`.
pub fn propagate(model: &QModel, lwe_n: usize) -> DeviationBound {
    let e = e_ms_bound(lwe_n);
    let a_max = model.cfg.a_max() as f64;
    let cap = 2.0 * a_max;
    let mut per_value: Vec<f64> = vec![0.0];
    let mut per_node_acc: Vec<f64> = Vec::with_capacity(model.nodes.len());
    let mut logits = 0.0f64;
    for (ni, node) in model.nodes.iter().enumerate() {
        let dev_in = per_value[node.input];
        let is_last = ni == model.nodes.len() - 1;
        let out_dev = match &node.op {
            QOp::Linear(l) => {
                let (c_out, c_in, k) = (
                    l.weight.shape()[0],
                    l.weight.shape()[1],
                    l.weight.shape()[2],
                );
                let per = c_in * k * k;
                let row_l1 = (0..c_out)
                    .map(|co| {
                        l.weight.data()[co * per..(co + 1) * per]
                            .iter()
                            .map(|&w| w.abs())
                            .sum::<i64>()
                    })
                    .max()
                    .unwrap_or(0) as f64;
                let mut acc_dev = row_l1 * dev_in;
                if let Some((skip_idx, mult)) = node.skip {
                    acc_dev += (mult.abs() as f64) * per_value[skip_idx];
                }
                if is_last {
                    // Client-bound: the accumulator never drops to `t`,
                    // and the exact mod-q_mid decrypt rounds once.
                    per_node_acc.push(acc_dev);
                    logits = (acc_dev + 1.0) * (l.in_scale * l.w_scale).abs();
                    0.0
                } else {
                    acc_dev += e;
                    per_node_acc.push(acc_dev);
                    let slope = lipschitz(l.act) * (l.in_scale * l.w_scale / l.out_scale).abs();
                    (slope * acc_dev + 1.0).min(cap)
                }
            }
            QOp::MaxPool { k } => {
                let rounds = (k * k - 1) as f64;
                let d = dev_in + e + rounds * e;
                per_node_acc.push(d);
                d.min(cap)
            }
            QOp::AvgPool { k } => {
                let kk = (k * k) as f64;
                let sum_dev = kk * (dev_in + e);
                per_node_acc.push(sum_dev);
                (sum_dev / kk + 1.0).min(cap)
            }
        };
        per_value.push(out_dev);
    }
    DeviationBound {
        per_value,
        per_node_acc,
        logits,
    }
}
