//! Text serialization of fuzz cases and the pinned regression corpus.
//!
//! Every minimized failure gets committed under `tests/fuzz_corpus/` as a
//! `.case` file in a versioned, line-oriented text format (floats are
//! written as hexadecimal `f64` bit patterns, so round-tripping is exact
//! and diffs are stable). `tests/fuzz_corpus.rs` replays the whole
//! directory through all four oracles forever after.

use std::path::PathBuf;

use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

use crate::pipeline::PackingMethod;

use super::gen::{CaseParams, FuzzCase};

/// The committed corpus directory (workspace-relative, resolved from this
/// crate's manifest so it is stable for every consumer crate).
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fuzz_corpus"
    ))
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn act_name(a: Activation) -> &'static str {
    match a {
        Activation::Identity => "identity",
        Activation::ReLU => "relu",
        Activation::Sigmoid => "sigmoid",
        Activation::Gelu => "gelu",
    }
}

fn ints(data: &[i64]) -> String {
    data.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Serializes a case to the versioned text format.
pub fn to_text(case: &FuzzCase) -> String {
    let mut out = String::new();
    out.push_str("athena-fuzz-case v1\n");
    out.push_str(&format!("seed {}\n", case.seed));
    let packing = match case.params.packing {
        PackingMethod::Column => "column",
        PackingMethod::Bsgs => "bsgs",
    };
    out.push_str(&format!(
        "params {} {} {} {packing}\n",
        case.params.n, case.params.lwe_n, case.params.ks_base_log
    ));
    out.push_str(&format!(
        "cfg {} {}\n",
        case.model.cfg.w_bits, case.model.cfg.a_bits
    ));
    out.push_str(&format!(
        "input_scale {}\n",
        f64_hex(case.model.input_scale)
    ));
    let s = case.input.shape();
    out.push_str(&format!(
        "input {} {} {} : {}\n",
        s[0],
        s[1],
        s[2],
        ints(case.input.data())
    ));
    for node in &case.model.nodes {
        let skip = match node.skip {
            Some((v, m)) => format!("{v}*{m}"),
            None => "-".into(),
        };
        match &node.op {
            QOp::Linear(l) => {
                let w = l.weight.shape();
                out.push_str(&format!(
                    "node linear {} {skip} {} {} {} {} {} {} {} w {} {} {} {} : {} b : {}\n",
                    node.input,
                    if l.is_fc { "fc" } else { "conv" },
                    l.stride,
                    l.padding,
                    act_name(l.act),
                    f64_hex(l.in_scale),
                    f64_hex(l.w_scale),
                    f64_hex(l.out_scale),
                    w[0],
                    w[1],
                    w[2],
                    w[3],
                    ints(l.weight.data()),
                    ints(&l.bias)
                ));
            }
            QOp::MaxPool { k } => {
                out.push_str(&format!("node maxpool {} {skip} {k}\n", node.input));
            }
            QOp::AvgPool { k } => {
                out.push_str(&format!("node avgpool {} {skip} {k}\n", node.input));
            }
        }
    }
    out.push_str("end\n");
    out
}

struct Cursor<'a> {
    toks: std::str::SplitWhitespace<'a>,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a str) -> Self {
        Self {
            toks: line.split_whitespace(),
        }
    }
    fn tok(&mut self, what: &str) -> Result<&'a str, String> {
        self.toks.next().ok_or_else(|| format!("missing {what}"))
    }
    fn usize(&mut self, what: &str) -> Result<usize, String> {
        self.tok(what)?
            .parse()
            .map_err(|e| format!("bad {what}: {e}"))
    }
    fn f64_bits(&mut self, what: &str) -> Result<f64, String> {
        let raw = self.tok(what)?;
        u64::from_str_radix(raw, 16)
            .map(f64::from_bits)
            .map_err(|e| format!("bad {what}: {e}"))
    }
    fn ints_until(&mut self, stop: Option<&str>) -> Result<Vec<i64>, String> {
        let mut out = Vec::new();
        for t in self.toks.by_ref() {
            if Some(t) == stop {
                return Ok(out);
            }
            out.push(t.parse().map_err(|e| format!("bad int {t}: {e}"))?);
        }
        match stop {
            None => Ok(out),
            Some(s) => Err(format!("missing {s} separator")),
        }
    }
}

fn parse_skip(tok: &str) -> Result<Option<(usize, i64)>, String> {
    if tok == "-" {
        return Ok(None);
    }
    let (v, m) = tok
        .split_once('*')
        .ok_or_else(|| format!("bad skip {tok}"))?;
    Ok(Some((
        v.parse().map_err(|e| format!("bad skip value: {e}"))?,
        m.parse().map_err(|e| format!("bad skip mult: {e}"))?,
    )))
}

/// Parses the versioned text format back into a case.
pub fn from_text(text: &str) -> Result<FuzzCase, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    if lines.next().map(str::trim) != Some("athena-fuzz-case v1") {
        return Err("missing 'athena-fuzz-case v1' header".into());
    }
    let mut seed = 0u64;
    let mut params: Option<CaseParams> = None;
    let mut cfg: Option<QuantConfig> = None;
    let mut input_scale = 1.0f64;
    let mut input: Option<ITensor> = None;
    let mut nodes: Vec<QNode> = Vec::new();
    for line in lines {
        let mut c = Cursor::new(line);
        match c.tok("directive")? {
            "seed" => {
                seed = c
                    .tok("seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "params" => {
                let n = c.usize("n")?;
                let lwe_n = c.usize("lwe_n")?;
                let ks_base_log = c.usize("ks_base_log")? as u32;
                let packing = match c.tok("packing")? {
                    "column" => PackingMethod::Column,
                    "bsgs" => PackingMethod::Bsgs,
                    other => return Err(format!("unknown packing {other}")),
                };
                params = Some(CaseParams {
                    n,
                    lwe_n,
                    ks_base_log,
                    packing,
                });
            }
            "cfg" => {
                let w = c.usize("w_bits")? as u32;
                let a = c.usize("a_bits")? as u32;
                cfg = Some(QuantConfig::new(w, a));
            }
            "input_scale" => input_scale = c.f64_bits("input_scale")?,
            "input" => {
                let shape = [c.usize("c")?, c.usize("h")?, c.usize("w")?];
                c.tok(":")?;
                let data = c.ints_until(None)?;
                if data.len() != shape.iter().product::<usize>() {
                    return Err(format!(
                        "input has {} values, shape wants {}",
                        data.len(),
                        shape.iter().product::<usize>()
                    ));
                }
                input = Some(ITensor::from_vec(&shape, data));
            }
            "node" => {
                let kind = c.tok("node kind")?;
                let inp = c.usize("input")?;
                let skip = parse_skip(c.tok("skip")?)?;
                let op = match kind {
                    "linear" => {
                        let is_fc = match c.tok("fc|conv")? {
                            "fc" => true,
                            "conv" => false,
                            other => return Err(format!("unknown linear kind {other}")),
                        };
                        let stride = c.usize("stride")?;
                        let padding = c.usize("padding")?;
                        let act = match c.tok("act")? {
                            "identity" => Activation::Identity,
                            "relu" => Activation::ReLU,
                            "sigmoid" => Activation::Sigmoid,
                            "gelu" => Activation::Gelu,
                            other => return Err(format!("unknown activation {other}")),
                        };
                        let in_scale = c.f64_bits("in_scale")?;
                        let w_scale = c.f64_bits("w_scale")?;
                        let out_scale = c.f64_bits("out_scale")?;
                        c.tok("w")?;
                        let ws = [
                            c.usize("c_out")?,
                            c.usize("c_in")?,
                            c.usize("k")?,
                            c.usize("k")?,
                        ];
                        c.tok(":")?;
                        let wdata = c.ints_until(Some("b"))?;
                        if wdata.len() != ws.iter().product::<usize>() {
                            return Err(format!(
                                "weight has {} values, shape wants {}",
                                wdata.len(),
                                ws.iter().product::<usize>()
                            ));
                        }
                        c.tok(":")?;
                        let bias = c.ints_until(None)?;
                        QOp::Linear(QLinear {
                            weight: ITensor::from_vec(&ws, wdata),
                            bias,
                            stride,
                            padding,
                            is_fc,
                            act,
                            in_scale,
                            w_scale,
                            out_scale,
                        })
                    }
                    "maxpool" => QOp::MaxPool { k: c.usize("k")? },
                    "avgpool" => QOp::AvgPool { k: c.usize("k")? },
                    other => return Err(format!("unknown node kind {other}")),
                };
                nodes.push(QNode {
                    op,
                    input: inp,
                    skip,
                });
            }
            "end" => break,
            other => return Err(format!("unknown directive {other}")),
        }
    }
    let params = params.ok_or("missing params line")?;
    let cfg = cfg.ok_or("missing cfg line")?;
    let input = input.ok_or("missing input line")?;
    if nodes.is_empty() {
        return Err("no nodes".into());
    }
    Ok(FuzzCase {
        seed,
        params,
        model: QModel {
            nodes,
            input_scale,
            cfg,
        },
        input,
    })
}

#[cfg(test)]
mod tests {
    use super::super::gen_case;
    use super::*;

    #[test]
    fn round_trips_generated_cases_exactly() {
        for seed in [1u64, 2, 3, 17, 99] {
            let case = gen_case(seed);
            let text = to_text(&case);
            let back = from_text(&text).expect("parse back");
            assert_eq!(to_text(&back), text, "seed {seed} round-trip drifted");
            assert_eq!(back.seed, case.seed);
            assert_eq!(back.params, case.params);
            assert_eq!(back.input.data(), case.input.data());
            assert_eq!(back.model.nodes.len(), case.model.nodes.len());
        }
    }
}
