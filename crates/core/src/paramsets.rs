//! Table 1: the six CNN-under-FHE solutions compared in §2, with their
//! parameter sets and derived ciphertext/key sizes.

/// Scheme family of a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Leveled HE only (no bootstrapping).
    Lhe,
    /// CKKS with bootstrapping.
    CkksFhe,
    /// Athena: BFV linear + FBS non-linear/bootstrap.
    AthenaFhe,
}

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Name as cited.
    pub name: &'static str,
    /// Scheme family.
    pub kind: SchemeKind,
    /// Quantized model?
    pub quantized: bool,
    /// Ring degree.
    pub degree: usize,
    /// log₂ of the ciphertext modulus `Q`.
    pub log_q: u32,
    /// Non-linear handling.
    pub nonlinear: &'static str,
    /// Dataset.
    pub dataset: &'static str,
    /// (cipher, plain) accuracy as reported.
    pub accuracy: (f64, f64),
}

impl Solution {
    /// Ciphertext size in bytes: two ring elements, `log₂Q` bits per
    /// coefficient (packed).
    pub fn ciphertext_bytes(&self) -> usize {
        2 * self.degree * self.log_q as usize / 8
    }

    /// Approximate evaluation-key footprint in bytes (rotation +
    /// relinearization), using the standard "~`2·d`-ciphertext" estimate
    /// per key and the per-scheme key counts reported in the literature.
    pub fn key_bytes(&self) -> usize {
        let limbs = self.log_q.div_ceil(60) as usize;
        let per_key = 2 * limbs * self.degree * self.log_q as usize / 8;
        let keys = match self.kind {
            SchemeKind::Lhe => 20,       // galois set for small models
            SchemeKind::CkksFhe => 60,   // bootstrapping galois set
            SchemeKind::AthenaFhe => 30, // packing + S2C + relin
        };
        keys * per_key
    }
}

/// The six solutions of Table 1.
pub fn table1() -> Vec<Solution> {
    vec![
        Solution {
            name: "YASHE (LHE) / CryptoNets",
            kind: SchemeKind::Lhe,
            quantized: false,
            degree: 8192,
            log_q: 191,
            nonlinear: "Separated (Taylor)",
            dataset: "MNIST",
            accuracy: (98.95, 99.0),
        },
        Solution {
            name: "BGV (LHE) / CryptoDL",
            kind: SchemeKind::Lhe,
            quantized: false,
            degree: 8192,
            log_q: 220,
            nonlinear: "Separated (Taylor)",
            dataset: "MNIST",
            accuracy: (99.5, 99.7),
        },
        Solution {
            name: "BFV (LHE) / Fast-CryptoNets",
            kind: SchemeKind::Lhe,
            quantized: true,
            degree: 8192,
            log_q: 219,
            nonlinear: "Separated (Taylor)",
            dataset: "CIFAR-10",
            accuracy: (86.76, 93.10),
        },
        Solution {
            name: "CKKS (FHE) [28]",
            kind: SchemeKind::CkksFhe,
            quantized: false,
            degree: 65536,
            log_q: 1450,
            nonlinear: "Separated (Taylor)",
            dataset: "CIFAR-10",
            accuracy: (92.43, 92.95),
        },
        Solution {
            name: "CKKS (FHE) [27]",
            kind: SchemeKind::CkksFhe,
            quantized: false,
            degree: 65536,
            log_q: 1501,
            nonlinear: "Separated (Taylor)",
            dataset: "CIFAR-10",
            accuracy: (92.80, 93.07),
        },
        Solution {
            name: "Athena (BFV + FBS)",
            kind: SchemeKind::AthenaFhe,
            quantized: true,
            degree: 32768,
            log_q: 720,
            nonlinear: "Merged (FBS)",
            dataset: "CIFAR-10",
            accuracy: (94.65, 94.89),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn athena_ciphertext_is_several_times_smaller_than_ckks() {
        let rows = table1();
        let ckks = rows
            .iter()
            .find(|r| r.name.contains("[27]"))
            .expect("row exists");
        let athena = rows.last().expect("athena row");
        let ratio = ckks.ciphertext_bytes() as f64 / athena.ciphertext_bytes() as f64;
        // Paper: "3~6×" smaller.
        assert!(ratio > 3.0 && ratio < 7.0, "ratio {ratio}");
        // Absolute sizes match the table: CKKS ≈ 24 MB (reported 32 with
        // metadata), Athena ≈ 5.6 MB.
        let mb = athena.ciphertext_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb > 5.0 && mb < 6.0, "Athena ciphertext {mb} MB");
    }

    #[test]
    fn lhe_rows_cannot_bootstrap() {
        for r in table1() {
            if r.kind == SchemeKind::Lhe {
                assert!(r.log_q <= 220, "LHE rows stay at small Q");
            }
        }
    }

    #[test]
    fn athena_wins_ciphertext_accuracy() {
        let rows = table1();
        let best_cipher = rows
            .iter()
            .filter(|r| r.dataset == "CIFAR-10")
            .map(|r| r.accuracy.0)
            .fold(0.0f64, f64::max);
        assert_eq!(
            best_cipher, 94.65,
            "Athena has the best CIFAR-10 cipher accuracy"
        );
    }
}
