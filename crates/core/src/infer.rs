//! End-to-end encrypted inference: runs a quantized [`QModel`] through the
//! Athena loop, layer by layer, entirely under FHE.
//!
//! Layouts: every intermediate value is held as a coefficient-encoded BFV
//! ciphertext whose layout was chosen for its *consumer* — conv consumers
//! get the padded `M̂` layout of Eq. 1, pooling and FC consumers get flat
//! order. Residual skips re-extract LWEs from the stored producer
//! ciphertext, scale-align them, and add them into the consumer's
//! accumulator at the LWE level (exact mod-`t` arithmetic).
//!
//! This module targets the reduced test parameter sets; model shapes must
//! fit a single input-channel group per ciphertext (asserted). Full-scale
//! models are measured through the noise-faithful simulator and the
//! accelerator cost model, as in the paper.

use athena_fhe::bfv::BfvCiphertext;
use athena_fhe::fbs::Lut;
use athena_fhe::lwe::LweCiphertext;
use athena_math::sampler::Sampler;
use athena_nn::models::ConvShape;
use athena_nn::qmodel::{QLinear, QModel, QOp};
use athena_nn::tensor::ITensor;

use crate::encoding::ConvEncoder;
use crate::pipeline::{AthenaEngine, AthenaEvalKeys, AthenaSecrets, PipelineStats};

/// A stored intermediate value: ciphertext + where each flat activation
/// index lives among its coefficients.
#[derive(Debug, Clone)]
struct StoredValue {
    ct: BfvCiphertext,
    /// `positions[i]` = coefficient index of flat activation `i`.
    positions: Vec<usize>,
    shape: Vec<usize>,
}

/// The layout a consumer wants its input packed into.
#[derive(Debug, Clone)]
struct ConsumerLayout {
    /// For each slot `s`, which flat activation index goes there (None =
    /// trivial zero / padding).
    slot_of: Vec<Option<usize>>,
    /// `positions[i]` for the produced StoredValue (slot index of flat
    /// activation `i` — identical to coefficient index after S2C).
    positions: Vec<usize>,
}

fn flat_layout(len: usize, n: usize) -> ConsumerLayout {
    assert!(len <= n, "value of {len} activations exceeds {n} slots");
    let mut slot_of = vec![None; n];
    for (i, s) in slot_of.iter_mut().take(len).enumerate() {
        *s = Some(i);
    }
    ConsumerLayout {
        slot_of,
        positions: (0..len).collect(),
    }
}

/// Padded `M̂` layout for a conv consumer: activation `(c,h,w)` of the
/// unpadded tensor goes to slot `c·H'W' + (h+p)·W' + (w+p)`.
fn conv_layout(shape: &[usize], padding: usize, n: usize) -> ConsumerLayout {
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let (hp, wp) = (h + 2 * padding, w + 2 * padding);
    assert!(c * hp * wp <= n, "padded input does not fit the ring");
    let mut slot_of = vec![None; n];
    let mut positions = vec![0usize; c * h * w];
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                let flat = (ci * h + y) * w + x;
                let slot = ci * hp * wp + (y + padding) * wp + (x + padding);
                slot_of[slot] = Some(flat);
                positions[flat] = slot;
            }
        }
    }
    ConsumerLayout { slot_of, positions }
}

/// What the consumer of a value is, for layout selection.
fn consumer_layout(model: &QModel, value_idx: usize, shape: &[usize], n: usize) -> ConsumerLayout {
    // main consumer = first node whose `input` is this value
    for node in &model.nodes {
        if node.input == value_idx {
            return match &node.op {
                QOp::Linear(l) if !l.is_fc => conv_layout(shape, l.padding, n),
                _ => flat_layout(shape.iter().product(), n),
            };
        }
    }
    flat_layout(shape.iter().product(), n)
}

/// Result of an encrypted inference.
#[derive(Debug)]
pub struct EncryptedInference {
    /// Decrypted float logits.
    pub logits: Vec<f64>,
    /// Operation statistics.
    pub stats: PipelineStats,
}

/// Runs a quantized model under FHE on one quantized input image.
///
/// # Panics
///
/// Panics if a layer does not fit the engine's ring degree in a single
/// input-channel group (use larger parameters or a smaller model).
pub fn run_encrypted(
    engine: &AthenaEngine,
    secrets: &AthenaSecrets,
    keys: &AthenaEvalKeys,
    model: &QModel,
    input: &ITensor,
    sampler: &mut Sampler,
) -> EncryptedInference {
    let n = engine.context().n();
    let t = engine.context().t();
    let a_max = model.cfg.a_max();
    let mut stats = PipelineStats::default();

    // Encrypt the input in its consumer's layout.
    let in_layout = consumer_layout(model, 0, input.shape(), n);
    let input_sv = {
        let mut coeffs = vec![0i64; n];
        for (flat, &pos) in in_layout.positions.iter().enumerate() {
            coeffs[pos] = input.data()[flat];
        }
        let positions_all: Vec<usize> = (0..n).collect();
        StoredValue {
            ct: engine.encrypt_at(&coeffs, &positions_all, secrets, sampler),
            positions: in_layout.positions.clone(),
            shape: input.shape().to_vec(),
        }
    };

    let mut values: Vec<Option<StoredValue>> = vec![Some(input_sv)];
    let mut logits: Vec<f64> = Vec::new();

    for (ni, node) in model.nodes.iter().enumerate() {
        let is_last = ni == model.nodes.len() - 1;
        let sv = values[node.input]
            .as_ref()
            .expect("producer stored")
            .clone();
        let (out_lwes, out_shape): (Vec<LweCiphertext>, Vec<usize>) = match &node.op {
            QOp::Linear(l) => {
                let (acc_lwes, shape) =
                    run_linear_accumulate(engine, keys, &sv, l, is_last, &mut stats);
                let mut acc_lwes = acc_lwes;
                if let Some((skip_idx, mult)) = node.skip {
                    let skip_sv = values[skip_idx].as_ref().expect("skip stored");
                    let skip_lwes = if is_last {
                        engine.extract_lwes_mid(&skip_sv.ct, &skip_sv.positions, keys, &mut stats)
                    } else {
                        engine.extract_lwes(&skip_sv.ct, &skip_sv.positions, keys, &mut stats)
                    };
                    assert_eq!(skip_lwes.len(), acc_lwes.len(), "skip shape mismatch");
                    for (a, s) in acc_lwes.iter_mut().zip(&skip_lwes) {
                        *a = engine.lwe_add_scaled(a, s, mult);
                    }
                }
                (acc_lwes, shape)
            }
            QOp::MaxPool { k } => {
                let lwes = engine.extract_lwes(&sv.ct, &sv.positions, keys, &mut stats);
                let (c, h, w) = (sv.shape[0], sv.shape[1], sv.shape[2]);
                let (oh, ow) = (h / k, w / k);
                // Window-position streams, then a max tree over them.
                let mut streams: Vec<Vec<LweCiphertext>> = Vec::with_capacity(k * k);
                for ky in 0..*k {
                    for kx in 0..*k {
                        let mut s = Vec::with_capacity(c * oh * ow);
                        for ci in 0..c {
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    s.push(lwes[(ci * h + oy * k + ky) * w + ox * k + kx].clone());
                                }
                            }
                        }
                        streams.push(s);
                    }
                }
                while streams.len() > 1 {
                    let b = streams.pop().expect("len > 1");
                    let a = streams.pop().expect("len > 1");
                    streams.push(engine.lwe_max(&a, &b, keys, &mut stats));
                }
                (streams.pop().expect("one stream left"), vec![c, oh, ow])
            }
            QOp::AvgPool { k } => {
                let lwes = engine.extract_lwes(&sv.ct, &sv.positions, keys, &mut stats);
                let (c, h, w) = (sv.shape[0], sv.shape[1], sv.shape[2]);
                let (oh, ow) = (h / k, w / k);
                let mut sums = Vec::with_capacity(c * oh * ow);
                for ci in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc: Option<LweCiphertext> = None;
                            for ky in 0..*k {
                                for kx in 0..*k {
                                    let e = &lwes[(ci * h + oy * k + ky) * w + ox * k + kx];
                                    acc = Some(match acc {
                                        None => e.clone(),
                                        Some(a) => engine.lwe_add_scaled(&a, e, 1),
                                    });
                                }
                            }
                            sums.push(acc.expect("k >= 1"));
                        }
                    }
                }
                (sums, vec![c, oh, ow])
            }
        };

        if is_last {
            // Client decrypts the raw accumulators and dequantizes.
            let ints = engine.decrypt_lwes(&out_lwes, secrets);
            if let QOp::Linear(l) = &node.op {
                logits = ints
                    .iter()
                    .map(|&v| v as f64 * l.in_scale * l.w_scale)
                    .collect();
            } else {
                logits = ints.iter().map(|&v| v as f64).collect();
            }
            values.push(None);
            continue;
        }

        // Remap LUT for this node (Linear fuses act+remap; AvgPool divides;
        // MaxPool output is already in the activation domain).
        let out_len: usize = out_shape.iter().product();
        let layout = consumer_layout(model, ni + 1, &out_shape, n);
        let mut slots: Vec<Option<LweCiphertext>> = vec![None; n];
        for (slot, flat) in layout.slot_of.iter().enumerate() {
            if let Some(f) = flat {
                slots[slot] = Some(out_lwes[*f].clone());
            }
        }
        let lut = match &node.op {
            QOp::Linear(l) => {
                let lc = l.clone();
                Lut::from_signed_fn(t, move |v| lc.remap(v, a_max))
            }
            QOp::AvgPool { k } => {
                let kk = (k * k) as f64;
                Lut::from_signed_fn(t, move |v| {
                    ((v as f64 / kk).round() as i64).clamp(-a_max, a_max)
                })
            }
            QOp::MaxPool { .. } => Lut::from_signed_fn(t, |v| v),
        };
        let ct = engine.pack_fbs_s2c(&slots, &lut, keys, &mut stats);
        assert_eq!(layout.positions.len(), out_len);
        values.push(Some(StoredValue {
            ct,
            positions: layout.positions,
            shape: out_shape,
        }));
    }

    EncryptedInference { logits, stats }
}

/// Runs the linear part of a node: coefficient-encoded conv/FC over the
/// stored ciphertext, output-channel groups as needed, then extraction of
/// the (stride-subsampled) valid accumulators.
///
/// `client_bound` keeps the extracted LWEs at the extraction prime
/// (see [`AthenaEngine::extract_lwes_mid`]): the last layer's accumulators
/// go straight to the client, so they must not pay the per-coordinate
/// mod-`t` rounding noise that only exists to feed the FBS LUT.
fn run_linear_accumulate(
    engine: &AthenaEngine,
    keys: &AthenaEvalKeys,
    sv: &StoredValue,
    l: &QLinear,
    client_bound: bool,
    stats: &mut PipelineStats,
) -> (Vec<LweCiphertext>, Vec<usize>) {
    let n = engine.context().n();
    let (c_out, c_in, k) = (
        l.weight.shape()[0],
        l.weight.shape()[1],
        l.weight.shape()[2],
    );
    // Effective input spatial dims (padded for conv; 1×1 for FC).
    let (hp, wp) = if l.is_fc {
        (1usize, 1usize)
    } else {
        (sv.shape[1] + 2 * l.padding, sv.shape[2] + 2 * l.padding)
    };
    let eff_cin = if l.is_fc { sv.positions.len() } else { c_in };
    assert_eq!(
        if l.is_fc { eff_cin } else { c_in },
        if l.is_fc { c_in } else { sv.shape[0] },
        "input channel mismatch"
    );
    // Choose output-channel group size that fits.
    let hw = hp * wp;
    let mut co_g = c_out;
    loop {
        let t_idx = hw * (co_g * eff_cin - 1) + wp * (k - 1) + k - 1;
        if t_idx + eff_cin * hw <= n {
            break;
        }
        assert!(
            co_g > 1,
            "layer does not fit ring degree {n} even with one output channel"
        );
        co_g = co_g.div_ceil(2);
    }
    let groups = c_out.div_ceil(co_g);
    let valid = hp - k + 1;
    let out_hw = if l.is_fc {
        1
    } else {
        (sv.shape[1] + 2 * l.padding - k) / l.stride + 1
    };
    let mut all_lwes: Vec<LweCiphertext> = Vec::new();
    for g in 0..groups {
        let co_lo = g * co_g;
        let co_hi = ((g + 1) * co_g).min(c_out);
        let g_cout = co_hi - co_lo;
        let shape = ConvShape {
            hw: hp,
            c_in: eff_cin,
            c_out: g_cout,
            k,
            stride: 1,
            padding: 0,
        };
        let enc = ConvEncoder::new(shape, n);
        // kernel slice for this group
        let per = eff_cin * k * k;
        let kw = ITensor::from_vec(
            &[g_cout, eff_cin, k, k],
            l.weight.data()[co_lo * per..co_hi * per].to_vec(),
        );
        // bias at output positions (stride-subsampled)
        let mut bias_at = Vec::new();
        let mut positions = Vec::new();
        for co in 0..g_cout {
            for oy in 0..out_hw {
                for ox in 0..out_hw {
                    let (y, x) = (oy * l.stride, ox * l.stride);
                    debug_assert!(y < valid && x < valid);
                    let pos = enc.output_index(co, y, x);
                    positions.push(pos);
                    let b = l.bias[co_lo + co];
                    if b != 0 {
                        bias_at.push((pos, b));
                    }
                }
            }
        }
        let conv_ct = engine.linear(&sv.ct, &enc.encode_kernel(&kw), &bias_at, stats);
        all_lwes.extend(if client_bound {
            engine.extract_lwes_mid(&conv_ct, &positions, keys, stats)
        } else {
            engine.extract_lwes(&conv_ct, &positions, keys, stats)
        });
    }
    (all_lwes, vec![c_out, out_hw, out_hw])
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_fhe::params::BfvParams;
    use athena_nn::qmodel::{Activation, QNode, QuantConfig};

    fn tiny_model() -> QModel {
        // conv 1->2 ch, 3x3 on 5x5 input (valid 3x3), then FC 18 -> 3.
        // Weights small so accumulators stay well inside t = 257.
        let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
        let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
        QModel {
            nodes: vec![
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[2, 1, 3, 3], conv_w),
                        bias: vec![1, -2],
                        stride: 1,
                        padding: 0,
                        is_fc: false,
                        act: Activation::ReLU,
                        in_scale: 0.5,
                        w_scale: 0.5,
                        out_scale: 1.0,
                    }),
                    input: 0,
                    skip: None,
                },
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[3, 18, 1, 1], fc_w),
                        bias: vec![0, 1, -1],
                        stride: 1,
                        padding: 0,
                        is_fc: true,
                        act: Activation::Identity,
                        in_scale: 1.0,
                        w_scale: 0.5,
                        out_scale: 1.0,
                    }),
                    input: 1,
                    skip: None,
                },
            ],
            input_scale: 0.5,
            cfg: QuantConfig::new(3, 3),
        }
    }

    #[test]
    fn encrypted_inference_matches_integer_reference() {
        let engine = AthenaEngine::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(777);
        let (secrets, keys) = engine.keygen(&mut sampler);
        let model = tiny_model();
        let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
        let reference = model.forward(&input);
        let enc = run_encrypted(&engine, &secrets, &keys, &model, &input, &mut sampler);
        assert_eq!(enc.logits.len(), 3);
        // Logits must be close (noise can shift an accumulator by a few
        // units; scales are 0.5 here).
        for (i, (&g, &w)) in enc.logits.iter().zip(&reference).enumerate() {
            assert!(
                (g - w).abs() <= 16.0,
                "logit {i}: encrypted {g} vs reference {w}"
            );
        }
        // The loop ran once per non-final layer.
        assert_eq!(enc.stats.fbs_calls, 1);
        assert_eq!(enc.stats.s2c_calls, 1);
        assert!(enc.stats.pmult >= 2);
    }

    #[test]
    fn encrypted_inference_with_padding_and_pool() {
        // conv 1->1 3x3 pad 1 on 4x4 (out 4x4), maxpool 2 (out 2x2), FC 4->2.
        let model = QModel {
            nodes: vec![
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[1, 1, 3, 3], vec![0, 1, 0, 1, 2, 1, 0, 1, 0]),
                        bias: vec![0],
                        stride: 1,
                        padding: 1,
                        is_fc: false,
                        act: Activation::ReLU,
                        in_scale: 1.0,
                        w_scale: 0.5,
                        out_scale: 1.0,
                    }),
                    input: 0,
                    skip: None,
                },
                QNode {
                    op: QOp::MaxPool { k: 2 },
                    input: 1,
                    skip: None,
                },
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[2, 4, 1, 1], vec![1, -1, 1, -1, 2, 0, -2, 0]),
                        bias: vec![0, 0],
                        stride: 1,
                        padding: 0,
                        is_fc: true,
                        act: Activation::Identity,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 2,
                    skip: None,
                },
            ],
            input_scale: 1.0,
            cfg: QuantConfig::new(3, 4),
        };
        let engine = AthenaEngine::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(778);
        let (secrets, keys) = engine.keygen(&mut sampler);
        let input = ITensor::from_vec(
            &[1, 4, 4],
            vec![1, -2, 3, 0, 2, 1, -1, 2, 0, 3, 1, -2, 1, 0, 2, 1],
        );
        let reference = model.forward(&input);
        let enc = run_encrypted(&engine, &secrets, &keys, &model, &input, &mut sampler);
        for (i, (&g, &w)) in enc.logits.iter().zip(&reference).enumerate() {
            assert!((g - w).abs() <= 20.0, "logit {i}: {g} vs {w}");
        }
        // MaxPool cost: k²−1 = 3 max rounds → 3 extra FBS calls + 1 conv
        // remap + 1 identity bridge after pooling.
        assert!(
            enc.stats.fbs_calls >= 4,
            "fbs calls = {}",
            enc.stats.fbs_calls
        );
    }

    #[test]
    fn residual_skip_under_encryption() {
        // conv1 1->1 3x3 pad1 (ReLU), conv2 1->1 3x3 pad1 with skip from
        // input value (mult 2), FC.
        let idk = |w: Vec<i64>| ITensor::from_vec(&[1, 1, 3, 3], w);
        let model = QModel {
            nodes: vec![
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: idk(vec![0, 0, 0, 0, 1, 0, 0, 0, 0]),
                        bias: vec![0],
                        stride: 1,
                        padding: 1,
                        is_fc: false,
                        act: Activation::ReLU,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 0,
                    skip: None,
                },
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: idk(vec![0, 1, 0, 0, 0, 0, 0, 1, 0]),
                        bias: vec![0],
                        stride: 1,
                        padding: 1,
                        is_fc: false,
                        act: Activation::ReLU,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 1,
                    skip: Some((1, 2)),
                },
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[1, 9, 1, 1], vec![1; 9]),
                        bias: vec![0],
                        stride: 1,
                        padding: 0,
                        is_fc: true,
                        act: Activation::Identity,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 2,
                    skip: None,
                },
            ],
            input_scale: 1.0,
            cfg: QuantConfig::new(4, 4),
        };
        let engine = AthenaEngine::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(779);
        let (secrets, keys) = engine.keygen(&mut sampler);
        let input = ITensor::from_vec(&[1, 3, 3], vec![2, -1, 3, 0, 1, -2, 4, 2, 0]);
        let reference = model.forward(&input);
        let enc = run_encrypted(&engine, &secrets, &keys, &model, &input, &mut sampler);
        assert!(
            (enc.logits[0] - reference[0]).abs() <= 30.0,
            "skip model: {} vs {}",
            enc.logits[0],
            reference[0]
        );
    }
}
