//! End-to-end encrypted inference: runs a quantized [`QModel`] through the
//! Athena loop, layer by layer, entirely under FHE.
//!
//! This is a thin compile-then-execute wrapper over [`crate::plan`]: the
//! model is first compiled into a typed [`crate::plan::ExecutionPlan`]
//! (layouts, group splits, LUTs, key requirements, analytic op counts all
//! resolved up front), then interpreted step by step by
//! [`crate::plan::execute`]. The plan path is bit-identical to the
//! pre-plan monolithic loop — every step is exact modular arithmetic and
//! the only sampler draws are the input encryption's.
//!
//! Layouts: every intermediate value is held as a coefficient-encoded BFV
//! ciphertext whose layout was chosen for its *consumer* — conv consumers
//! get the padded `M̂` layout of Eq. 1, pooling and FC consumers get flat
//! order. Residual skips re-extract LWEs from the stored producer
//! ciphertext, scale-align them, and add them into the consumer's
//! accumulator at the LWE level (exact mod-`t` arithmetic).
//!
//! This module targets the reduced test parameter sets; model shapes must
//! fit a single input-channel group per ciphertext (asserted). Full-scale
//! models are measured through the noise-faithful simulator and the
//! accelerator cost model, as in the paper.

use athena_math::sampler::Sampler;
use athena_nn::qmodel::QModel;
use athena_nn::tensor::ITensor;

use crate::pipeline::{AthenaEngine, AthenaEvalKeys, AthenaSecrets, PipelineStats};
use crate::plan;

/// Result of an encrypted inference.
#[derive(Debug)]
pub struct EncryptedInference {
    /// Decrypted float logits.
    pub logits: Vec<f64>,
    /// Operation statistics.
    pub stats: PipelineStats,
}

impl EncryptedInference {
    /// Predicted class ([`crate::util::argmax`] over the logits, the same
    /// tie-breaking as the simulated and plain-Q paths).
    pub fn predicted(&self) -> usize {
        crate::util::argmax(&self.logits)
    }
}

/// Runs a quantized model under FHE on one quantized input image.
///
/// # Panics
///
/// Panics if a layer does not fit the engine's ring degree in a single
/// input-channel group (use larger parameters or a smaller model).
pub fn run_encrypted(
    engine: &AthenaEngine,
    secrets: &AthenaSecrets,
    keys: &AthenaEvalKeys,
    model: &QModel,
    input: &ITensor,
    sampler: &mut Sampler,
) -> EncryptedInference {
    let compiled = plan::compile(engine, model, input.shape());
    let run = plan::execute(engine, secrets, keys, &compiled, input, sampler);
    EncryptedInference {
        logits: run.logits,
        stats: run.stats,
    }
}

/// Runs a quantized model under FHE with the noise probe on: the returned
/// [`plan::PlanRun`] carries per-step analytic noise charges, measured
/// budgets, and consumption, and the inference fails with a typed
/// [`plan::NoiseExhausted`] — instead of returning garbage logits — the
/// moment any step's measured budget reaches zero. Test/debug only (the
/// probe reads the secret key); the logits are bit-identical to
/// [`run_encrypted`].
///
/// # Panics
///
/// Panics under the same conditions as [`run_encrypted`].
pub fn run_encrypted_probed(
    engine: &AthenaEngine,
    secrets: &AthenaSecrets,
    keys: &AthenaEvalKeys,
    model: &QModel,
    input: &ITensor,
    sampler: &mut Sampler,
) -> Result<plan::PlanRun, plan::NoiseExhausted> {
    let compiled = plan::compile(engine, model, input.shape());
    plan::execute_probed(
        engine,
        secrets,
        keys,
        &compiled,
        input,
        sampler,
        plan::NoiseProbe::On,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_fhe::params::BfvParams;
    use athena_nn::qmodel::{Activation, QLinear, QNode, QOp, QuantConfig};

    fn tiny_model() -> QModel {
        // conv 1->2 ch, 3x3 on 5x5 input (valid 3x3), then FC 18 -> 3.
        // Weights small so accumulators stay well inside t = 257.
        let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
        let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
        QModel {
            nodes: vec![
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[2, 1, 3, 3], conv_w),
                        bias: vec![1, -2],
                        stride: 1,
                        padding: 0,
                        is_fc: false,
                        act: Activation::ReLU,
                        in_scale: 0.5,
                        w_scale: 0.5,
                        out_scale: 1.0,
                    }),
                    input: 0,
                    skip: None,
                },
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[3, 18, 1, 1], fc_w),
                        bias: vec![0, 1, -1],
                        stride: 1,
                        padding: 0,
                        is_fc: true,
                        act: Activation::Identity,
                        in_scale: 1.0,
                        w_scale: 0.5,
                        out_scale: 1.0,
                    }),
                    input: 1,
                    skip: None,
                },
            ],
            input_scale: 0.5,
            cfg: QuantConfig::new(3, 3),
        }
    }

    #[test]
    fn encrypted_inference_matches_integer_reference() {
        let engine = AthenaEngine::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(777);
        let (secrets, keys) = engine.keygen(&mut sampler);
        let model = tiny_model();
        let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
        let reference = model.forward(&input);
        let enc = run_encrypted(&engine, &secrets, &keys, &model, &input, &mut sampler);
        assert_eq!(enc.logits.len(), 3);
        // Logits must be close (noise can shift an accumulator by a few
        // units; scales are 0.5 here).
        for (i, (&g, &w)) in enc.logits.iter().zip(&reference).enumerate() {
            assert!(
                (g - w).abs() <= 16.0,
                "logit {i}: encrypted {g} vs reference {w}"
            );
        }
        // The loop ran once per non-final layer.
        assert_eq!(enc.stats.fbs_calls, 1);
        assert_eq!(enc.stats.s2c_calls, 1);
        assert!(enc.stats.pmult >= 2);
    }

    #[test]
    fn encrypted_inference_with_padding_and_pool() {
        // conv 1->1 3x3 pad 1 on 4x4 (out 4x4), maxpool 2 (out 2x2), FC 4->2.
        let model = QModel {
            nodes: vec![
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[1, 1, 3, 3], vec![0, 1, 0, 1, 2, 1, 0, 1, 0]),
                        bias: vec![0],
                        stride: 1,
                        padding: 1,
                        is_fc: false,
                        act: Activation::ReLU,
                        in_scale: 1.0,
                        w_scale: 0.5,
                        out_scale: 1.0,
                    }),
                    input: 0,
                    skip: None,
                },
                QNode {
                    op: QOp::MaxPool { k: 2 },
                    input: 1,
                    skip: None,
                },
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[2, 4, 1, 1], vec![1, -1, 1, -1, 2, 0, -2, 0]),
                        bias: vec![0, 0],
                        stride: 1,
                        padding: 0,
                        is_fc: true,
                        act: Activation::Identity,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 2,
                    skip: None,
                },
            ],
            input_scale: 1.0,
            cfg: QuantConfig::new(3, 4),
        };
        let engine = AthenaEngine::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(778);
        let (secrets, keys) = engine.keygen(&mut sampler);
        let input = ITensor::from_vec(
            &[1, 4, 4],
            vec![1, -2, 3, 0, 2, 1, -1, 2, 0, 3, 1, -2, 1, 0, 2, 1],
        );
        let reference = model.forward(&input);
        let enc = run_encrypted(&engine, &secrets, &keys, &model, &input, &mut sampler);
        for (i, (&g, &w)) in enc.logits.iter().zip(&reference).enumerate() {
            assert!((g - w).abs() <= 20.0, "logit {i}: {g} vs {w}");
        }
        // MaxPool cost: k²−1 = 3 max rounds → 3 extra FBS calls + 1 conv
        // remap + 1 identity bridge after pooling.
        assert!(
            enc.stats.fbs_calls >= 4,
            "fbs calls = {}",
            enc.stats.fbs_calls
        );
    }

    #[test]
    fn residual_skip_under_encryption() {
        // conv1 1->1 3x3 pad1 (ReLU), conv2 1->1 3x3 pad1 with skip from
        // input value (mult 2), FC.
        let idk = |w: Vec<i64>| ITensor::from_vec(&[1, 1, 3, 3], w);
        let model = QModel {
            nodes: vec![
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: idk(vec![0, 0, 0, 0, 1, 0, 0, 0, 0]),
                        bias: vec![0],
                        stride: 1,
                        padding: 1,
                        is_fc: false,
                        act: Activation::ReLU,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 0,
                    skip: None,
                },
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: idk(vec![0, 1, 0, 0, 0, 0, 0, 1, 0]),
                        bias: vec![0],
                        stride: 1,
                        padding: 1,
                        is_fc: false,
                        act: Activation::ReLU,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 1,
                    skip: Some((1, 2)),
                },
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[1, 9, 1, 1], vec![1; 9]),
                        bias: vec![0],
                        stride: 1,
                        padding: 0,
                        is_fc: true,
                        act: Activation::Identity,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 2,
                    skip: None,
                },
            ],
            input_scale: 1.0,
            cfg: QuantConfig::new(4, 4),
        };
        let engine = AthenaEngine::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(779);
        let (secrets, keys) = engine.keygen(&mut sampler);
        let input = ITensor::from_vec(&[1, 3, 3], vec![2, -1, 3, 0, 1, -2, 4, 2, 0]);
        let reference = model.forward(&input);
        let enc = run_encrypted(&engine, &secrets, &keys, &model, &input, &mut sampler);
        assert!(
            (enc.logits[0] - reference[0]).abs() <= 30.0,
            "skip model: {} vs {}",
            enc.logits[0],
            reference[0]
        );
    }
}
