//! Operation traces: for a model shape and quantization mode, the counts of
//! every FHE primitive each layer executes under the Athena framework at
//! production parameters. The accelerator simulator lowers these to cycles
//! and energy.
//!
//! Counts follow Table 3's complexities with explicit constants:
//! conv is `packing.pmults` PMult + HAdds; packing is `O(C)` PMult/HRot
//! (amortized packing after \[29\]); FBS is Alg. 2 (`t_eff` SMult/HAdd,
//! `2√t_eff` CMult); S2C is the `O(∛N)`-factored transform. The effective
//! LUT size `t_eff` shrinks with quantization precision — the mechanism
//! behind Fig. 12's w6a7 speedup.

use athena_nn::models::{ModelSpec, NonLinear, SpecLayer};
use athena_nn::qmodel::QuantConfig;

use crate::encoding::athena_packing;

/// Production crypto dimensions the trace is counted at.
#[derive(Debug, Clone, Copy)]
pub struct TraceParams {
    /// Ring degree `N`.
    pub n: usize,
    /// RNS limb count of `Q`.
    pub limbs: usize,
    /// Plaintext modulus.
    pub t: u64,
    /// LWE dimension after switching.
    pub lwe_n: usize,
}

impl TraceParams {
    /// The paper's production parameters.
    pub fn athena_production() -> Self {
        Self {
            n: 1 << 15,
            limbs: 12,
            t: 65537,
            lwe_n: 2048,
        }
    }
}

/// Counts of high-level homomorphic operations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCounts {
    /// Plaintext-ciphertext multiplications.
    pub pmult: u64,
    /// Ciphertext-ciphertext multiplications (with relinearization).
    pub cmult: u64,
    /// Scalar multiplications.
    pub smult: u64,
    /// Homomorphic additions.
    pub hadd: u64,
    /// Rotations (automorphism + key switch).
    pub hrot: u64,
    /// Coefficients run through the sample-extraction unit.
    pub sample_extract: u64,
    /// Ring-degree / modulus switches (whole-ciphertext rescales).
    pub mod_switch: u64,
}

impl OpCounts {
    /// Component-wise sum.
    pub fn add(&mut self, o: &OpCounts) {
        self.pmult += o.pmult;
        self.cmult += o.cmult;
        self.smult += o.smult;
        self.hadd += o.hadd;
        self.hrot += o.hrot;
        self.sample_extract += o.sample_extract;
        self.mod_switch += o.mod_switch;
    }
}

/// Execution phase, for the Fig. 9 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Convolution / FC.
    Linear,
    /// Format conversion: mod switch, sample extraction, packing, S2C.
    Conversion,
    /// Activation FBS.
    Activation,
    /// Pooling FBS.
    Pooling,
    /// Softmax FBS + CMult.
    Softmax,
}

impl Phase {
    /// All phases in display order.
    pub fn all() -> [Phase; 5] {
        [
            Phase::Linear,
            Phase::Conversion,
            Phase::Activation,
            Phase::Pooling,
            Phase::Softmax,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Linear => "Linear",
            Phase::Conversion => "Convert",
            Phase::Activation => "Activation",
            Phase::Pooling => "Pooling",
            Phase::Softmax => "Softmax",
        }
    }
}

/// The per-phase op counts of one model layer.
#[derive(Debug, Clone)]
pub struct LayerTrace {
    /// Layer index in the spec.
    pub layer: usize,
    /// Per-phase counts.
    pub phases: Vec<(Phase, OpCounts)>,
}

/// A whole-model trace.
#[derive(Debug, Clone)]
pub struct ModelTrace {
    /// Model name.
    pub name: &'static str,
    /// Parameters the counts assume.
    pub params: TraceParams,
    /// Quantization mode.
    pub quant: QuantConfig,
    /// Per-layer traces.
    pub layers: Vec<LayerTrace>,
}

impl ModelTrace {
    /// Total ops per phase.
    pub fn phase_totals(&self) -> Vec<(Phase, OpCounts)> {
        let mut totals: Vec<(Phase, OpCounts)> = Phase::all()
            .iter()
            .map(|&p| (p, OpCounts::default()))
            .collect();
        for l in &self.layers {
            for (p, c) in &l.phases {
                let slot = totals
                    .iter_mut()
                    .find(|(tp, _)| tp == p)
                    .expect("phase present");
                slot.1.add(c);
            }
        }
        totals
    }

    /// Grand total.
    pub fn total(&self) -> OpCounts {
        let mut t = OpCounts::default();
        for (_, c) in self.phase_totals() {
            t.add(&c);
        }
        t
    }
}

/// Effective LUT size for a layer under a quantization mode: the smallest
/// power of two covering the layer's statistical MAC bound
/// `√(C_in·k²)·w_max·a_max / 2` (a CLT-style bound matching the measured
/// maxima of Fig. 4), additionally capped at `2^(w_bits + a_bits + 2)`.
/// Lower precision ⇒ smaller LUT ⇒ cheaper FBS — the mechanism behind the
/// w6a7 speedup and the Fig. 12 performance curve. Note the cap
/// deliberately tracks precision past `t` (for w8a8 a larger plaintext
/// modulus would be provisioned), which is how Fig. 12's near-doubling
/// between w7a7 and w8a8 arises.
pub fn effective_lut_size(layer: &SpecLayer, quant: &QuantConfig, _t: u64) -> u64 {
    let fan_in = (layer.conv.c_in * layer.conv.k * layer.conv.k) as f64;
    let bound = fan_in.sqrt() * quant.w_max() as f64 * quant.a_max() as f64 / 2.0;
    let cap = 1u64 << (quant.w_bits + quant.a_bits + 2).min(17);
    let mut size = 256u64;
    while (size as f64) < bound && size < cap {
        size *= 2;
    }
    size.min(cap)
}

fn fbs_counts(t_eff: u64) -> OpCounts {
    let bs = (t_eff as f64).sqrt().ceil() as u64;
    OpCounts {
        smult: t_eff,
        hadd: t_eff,
        cmult: 2 * bs,
        ..OpCounts::default()
    }
}

/// Builds the trace of one layer.
fn layer_trace(
    idx: usize,
    layer: &SpecLayer,
    params: &TraceParams,
    quant: &QuantConfig,
) -> LayerTrace {
    let n = params.n;
    let p = athena_packing(&layer.conv, n);
    let outputs = layer.conv.outputs();
    let packed_cts = outputs.div_ceil(n as u64).max(1);
    let cbrt_n = (n as f64).cbrt().ceil() as u64;
    let c = layer.conv.c_out as u64;

    let mut phases = Vec::new();
    // Linear: Table 3 — O(C) PMult, zero HRot.
    phases.push((
        Phase::Linear,
        OpCounts {
            pmult: p.pmults as u64,
            hadd: p.hadds as u64 + p.result_cts as u64, // accumulation + bias
            ..OpCounts::default()
        },
    ));
    // Conversion: mod switch per result ct, ring-degree switch, SE per
    // output, packing O(C) PMult + O(C) HRot (amortized [29]), S2C per
    // packed ct at O(∛N).
    let mut conv = OpCounts {
        mod_switch: p.result_cts as u64 + packed_cts,
        sample_extract: outputs,
        pmult: c + packed_cts * 2 * cbrt_n,
        hrot: c + packed_cts * cbrt_n,
        hadd: c + packed_cts * cbrt_n,
        ..OpCounts::default()
    };
    // LWE dimension switch: one ring switch per result ct (already counted
    // via mod_switch) plus per-sample digit MACs folded into SE cost.
    conv.mod_switch += p.result_cts as u64;
    phases.push((Phase::Conversion, conv));
    // Non-linearity.
    let t_eff = effective_lut_size(layer, quant, params.t);
    match layer.act {
        NonLinear::Activation => {
            let mut a = OpCounts::default();
            for _ in 0..packed_cts {
                a.add(&fbs_counts(t_eff));
            }
            phases.push((Phase::Activation, a));
        }
        NonLinear::AvgPool { .. } => {
            let mut a = OpCounts::default();
            for _ in 0..packed_cts {
                a.add(&fbs_counts(t_eff));
            }
            phases.push((Phase::Pooling, a));
        }
        NonLinear::MaxPool { k } => {
            // Max-tree: each of the k²−1 rounds is a full
            // extract→pack→FBS→S2C cycle (see `athena_core::pipeline`), so
            // the conversion machinery is charged per round too.
            let rounds = (k * k - 1) as u64;
            let mut a = OpCounts::default();
            for _ in 0..rounds * packed_cts {
                a.add(&fbs_counts(t_eff));
                a.mod_switch += 2;
                a.sample_extract += outputs / rounds.max(1);
                a.pmult += c + 2 * cbrt_n;
                a.hrot += cbrt_n;
                a.hadd += c;
            }
            phases.push((Phase::Pooling, a));
        }
        NonLinear::Softmax => {
            // exp LUT + inverse LUT + one CMult (§3.2.3).
            let mut a = fbs_counts(t_eff);
            a.add(&fbs_counts(t_eff));
            a.cmult += 1;
            phases.push((Phase::Softmax, a));
        }
        NonLinear::None => {}
    }
    LayerTrace { layer: idx, phases }
}

/// Builds the full trace of a model.
pub fn trace_model(spec: &ModelSpec, params: &TraceParams, quant: &QuantConfig) -> ModelTrace {
    ModelTrace {
        name: spec.name,
        params: *params,
        quant: *quant,
        layers: spec
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| layer_trace(i, l, params, quant))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_nn::models::ModelSpec;

    #[test]
    fn resnet20_trace_shape() {
        let spec = ModelSpec::resnet(3);
        let tr = trace_model(
            &spec,
            &TraceParams::athena_production(),
            &QuantConfig::w7a7(),
        );
        assert_eq!(tr.layers.len(), spec.layers.len());
        let totals = tr.phase_totals();
        let act = totals
            .iter()
            .find(|(p, _)| *p == Phase::Activation)
            .expect("activation phase")
            .1;
        // FBS dominates SMult/HAdd volume (the paper's observation 1).
        assert!(act.smult > tr.total().pmult, "{act:?}");
    }

    #[test]
    fn lut_size_shrinks_with_precision() {
        let spec = ModelSpec::resnet(3);
        let layer = &spec.layers[5];
        let t = 65537;
        let hi = effective_lut_size(layer, &QuantConfig::new(8, 8), t);
        let mid = effective_lut_size(layer, &QuantConfig::w7a7(), t);
        let lo = effective_lut_size(layer, &QuantConfig::new(4, 4), t);
        assert!(hi >= mid && mid > lo, "{hi} {mid} {lo}");
        // w8a8 exceeds t: the cost model extrapolates past the clamp (a
        // larger plaintext modulus would be provisioned), as Fig. 12 does.
        assert!(hi <= 1 << 18);
        assert!(lo >= 256);
    }

    #[test]
    fn maxpool_multiplies_fbs_cost() {
        // LeNet (max pooling) must spend more pooling ops than ResNet
        // (average pooling) relative to model size — Fig. 9's point 2.
        let params = TraceParams::athena_production();
        let q = QuantConfig::w7a7();
        let lenet = trace_model(&ModelSpec::lenet(), &params, &q);
        let pool_smult = |tr: &ModelTrace| {
            tr.phase_totals()
                .iter()
                .find(|(p, _)| *p == Phase::Pooling)
                .map(|(_, c)| c.smult)
                .unwrap_or(0)
        };
        let act_smult = |tr: &ModelTrace| {
            tr.phase_totals()
                .iter()
                .find(|(p, _)| *p == Phase::Activation)
                .map(|(_, c)| c.smult)
                .unwrap_or(0)
        };
        // LeNet's max pooling is a substantial share of its non-linear work,
        // far beyond ResNet's average pooling (relative to activations).
        let lenet_ratio = pool_smult(&lenet) as f64 / act_smult(&lenet) as f64;
        let rn = trace_model(&ModelSpec::resnet(3), &params, &q);
        let rn_ratio = pool_smult(&rn) as f64 / act_smult(&rn) as f64;
        assert!(lenet_ratio > 0.2, "LeNet pool/act ratio {lenet_ratio}");
        assert!(
            lenet_ratio > 10.0 * rn_ratio,
            "LeNet {lenet_ratio} vs ResNet {rn_ratio}"
        );
    }

    #[test]
    fn resnet56_roughly_3x_resnet20() {
        let params = TraceParams::athena_production();
        let q = QuantConfig::w7a7();
        let t20 = trace_model(&ModelSpec::resnet(3), &params, &q).total();
        let t56 = trace_model(&ModelSpec::resnet(9), &params, &q).total();
        let ratio = t56.smult as f64 / t20.smult as f64;
        assert!(ratio > 2.2 && ratio < 3.6, "smult ratio {ratio}");
    }
}
