//! The Athena five-step loop (Fig. 2) over real cryptography.
//!
//! Per linear layer:
//!
//! 1. **Linear** — coefficient-encoded conv/FC via `PMult`/`HAdd` (Eq. 1).
//! 2. **ModSwitch** — rescale to an intermediate RNS prime (kills the
//!    linear-layer noise), Eq. 2.
//! 3. **Sample extraction + dimension switch** — Alg. 1, then LWE
//!    key-switch `N → n` and an LWE modulus switch down to `t`
//!    (introducing the small `e_ms`).
//! 4. **Packing** — homomorphic decryption packs the LWEs into fresh slots
//!    at full modulus `Q`, ordered for the *next* layer's layout.
//! 5. **FBS** — the fused remap+activation LUT (Eq. 3 / Alg. 2), then S2C
//!    returns the values to coefficient positions for the next loop.
//!
//! The engine runs at the reduced parameter sets of
//! [`athena_fhe::params::BfvParams`]; the production-scale numbers come from
//! the op-trace + accelerator model, exactly as in the paper's evaluation.

use athena_fhe::bfv::{BfvCiphertext, BfvContext, BfvEvaluator, GaloisKeys, RelinKey, SecretKey};
use athena_fhe::encoder::encode_coeff;
use athena_fhe::extract::{mod_switch_rlwe, rlwe_secret_as_lwe_mod, sample_extract_one};
use athena_fhe::fbs::{fbs_apply, fbs_apply_batch, FbsStats, Lut};
use athena_fhe::linear::SlotToCoeff;
use athena_fhe::lwe::{lwe_mod_switch, LweCiphertext, LweKeySwitchKey, LweSecret};
use athena_fhe::pack::{BsgsPackingKey, ColumnPackingKey};
use athena_fhe::params::BfvParams;
use athena_math::modops::Modulus;
use athena_math::par;
use athena_math::poly::Poly;
use athena_math::sampler::Sampler;

/// Secret material (client side).
#[derive(Debug)]
pub struct AthenaSecrets {
    /// RLWE secret.
    pub sk: SecretKey,
    /// Small LWE secret (dimension `n`) at modulus `t`.
    pub lwe_sk: LweSecret,
}

/// Which packing implementation the engine uses (DESIGN.md ablation 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackingMethod {
    /// One key ciphertext per LWE coordinate; `n` PMult, zero rotations.
    #[default]
    Column,
    /// Halevi–Shoup diagonals with a BSGS rotation schedule: `O(√n)` HRot —
    /// Table 3's packing row.
    Bsgs,
}

/// Evaluation keys (server side).
#[derive(Debug)]
pub struct AthenaEvalKeys {
    /// Relinearization key (FBS CMults).
    pub rlk: RelinKey,
    /// The single deduplicated Galois key set: S2C elements merged with the
    /// BSGS packing schedule's (when the engine packs via BSGS). Every
    /// rotation in the pipeline — S2C, linear transforms, BSGS packing —
    /// resolves against this one map, so shared elements are keyed once.
    pub gk: GaloisKeys,
    /// LWE dimension-switching key at the intermediate modulus.
    pub lwe_ksk: LweKeySwitchKey,
    /// LWE→RLWE packing key (column method).
    pub pack: ColumnPackingKey,
    /// Optional BSGS packing key (generated when the engine is configured
    /// with [`PackingMethod::Bsgs`]). Holds no Galois material of its own;
    /// its rotations use [`AthenaEvalKeys::gk`].
    pub pack_bsgs: Option<BsgsPackingKey>,
}

impl AthenaEvalKeys {
    /// Total evaluation-key bytes (Table 1 accounting): relinearization +
    /// Galois + LWE dimension switch + packing key material.
    pub fn bytes(&self, ctx: &BfvContext) -> usize {
        let ks = ctx.params().keyswitch_key_bytes();
        let mut total = ks; // rlk is one key-switch key
        total += self.gk.elements().len() * ks;
        total += self.lwe_ksk.bytes();
        total += self.pack.bytes(ctx);
        if let Some(b) = &self.pack_bsgs {
            total += b.bytes(ctx);
        }
        total
    }
}

/// The evaluation engine.
#[derive(Debug)]
pub struct AthenaEngine {
    ctx: BfvContext,
    s2c: SlotToCoeff,
    q_mid: u64,
    packing: PackingMethod,
    noise_margin: Option<u32>,
}

/// Aggregate operation statistics of an encrypted run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// PMult count.
    pub pmult: usize,
    /// HAdd count (ciphertext level).
    pub hadd: usize,
    /// Sample extractions.
    pub extracts: usize,
    /// Packing invocations.
    pub packs: usize,
    /// FBS invocations and their inner op counts.
    pub fbs_calls: usize,
    /// Accumulated FBS inner stats.
    pub fbs: FbsStats,
    /// S2C invocations.
    pub s2c_calls: usize,
}

impl AthenaEngine {
    /// Builds an engine for a parameter set (column packing).
    pub fn new(params: BfvParams) -> Self {
        Self::with_packing(params, PackingMethod::Column)
    }

    /// Builds an engine with an explicit packing method.
    pub fn with_packing(params: BfvParams, packing: PackingMethod) -> Self {
        let ctx = BfvContext::new(params);
        let s2c = SlotToCoeff::new(&ctx);
        let q_mid = ctx.params().q_primes[0];
        Self {
            ctx,
            s2c,
            q_mid,
            packing,
            noise_margin: None,
        }
    }

    /// Sets the compile-time noise guardrail margin: `plan::try_compile`
    /// rejects plans whose worst analytic chain plus this margin exceeds
    /// the parameter set's noise headroom ([`CompileError::NoiseBudget`]).
    /// The default is `None` — guardrail off — because the analytic
    /// chain charge is deliberately conservative (every step's
    /// `noise_bits` over-bounds its measured consumption, and the
    /// over-bounds compound along a chain), so models that run fine on
    /// small test parameter sets can carry analytic chains past the
    /// headroom. Enable it (`Some(0)` or a positive safety margin) when
    /// serving untrusted models on production-sized parameters, where a
    /// rejected-at-compile-time error beats a mid-inference
    /// [`NoiseExhausted`](crate::plan::NoiseExhausted).
    ///
    /// [`CompileError::NoiseBudget`]: crate::plan::CompileError::NoiseBudget
    pub fn with_noise_margin(mut self, margin: Option<u32>) -> Self {
        self.noise_margin = margin;
        self
    }

    /// The configured guardrail margin (`None` = guardrail off).
    pub fn noise_margin_bits(&self) -> Option<u32> {
        self.noise_margin
    }

    /// The FHE context.
    pub fn context(&self) -> &BfvContext {
        &self.ctx
    }

    /// The Table-4 noise model at this engine's parameters (exact `log₂Q`
    /// from the limb product) — the model the plan compiler charges every
    /// step's analytic `noise_bits` with.
    pub fn noise_model(&self) -> athena_fhe::noise::NoiseModel {
        athena_fhe::noise::NoiseModel::for_params(self.ctx.params())
    }

    /// The Galois elements the engine's configuration needs: the S2C
    /// schedule's, merged (sorted, deduplicated) with the BSGS packing
    /// schedule's when the engine packs via BSGS. This is the exact set
    /// [`Self::keygen`] generates — one shared key per element, no
    /// duplicates across consumers.
    pub fn required_galois_elements(&self) -> Vec<usize> {
        let ctx = &self.ctx;
        let mut elements = self.s2c.required_galois_elements(ctx);
        if self.packing == PackingMethod::Bsgs {
            elements.extend(BsgsPackingKey::required_galois_elements_for(
                ctx,
                ctx.params().lwe_n,
            ));
        }
        elements.sort_unstable();
        elements.dedup();
        elements
    }

    /// Generates client secrets and server evaluation keys.
    pub fn keygen(&self, sampler: &mut Sampler) -> (AthenaSecrets, AthenaEvalKeys) {
        let ctx = &self.ctx;
        let sk = SecretKey::generate(ctx, sampler);
        let lwe_sk = LweSecret::generate(ctx.params().lwe_n, ctx.t(), sampler);
        let rlk = RelinKey::generate(ctx, &sk, sampler);
        let gk = GaloisKeys::generate(ctx, &sk, &self.required_galois_elements(), sampler);
        let big = rlwe_secret_as_lwe_mod(&sk, self.q_mid);
        let small_mid = LweSecret::from_coeffs(lwe_sk.coeffs().to_vec(), self.q_mid);
        let lwe_ksk =
            LweKeySwitchKey::generate(&big, &small_mid, ctx.params().lwe_ks_base_log, sampler);
        let pack = ColumnPackingKey::generate(ctx, &sk, &lwe_sk, sampler);
        let pack_bsgs = match self.packing {
            PackingMethod::Bsgs => Some(BsgsPackingKey::generate(ctx, &sk, &lwe_sk, sampler)),
            PackingMethod::Column => None,
        };
        (
            AthenaSecrets { sk, lwe_sk },
            AthenaEvalKeys {
                rlk,
                gk,
                lwe_ksk,
                pack,
                pack_bsgs,
            },
        )
    }

    /// Encrypts activations placed at given coefficient positions
    /// (coefficient encoding, Step ① entry point).
    pub fn encrypt_at(
        &self,
        values: &[i64],
        positions: &[usize],
        secrets: &AthenaSecrets,
        sampler: &mut Sampler,
    ) -> BfvCiphertext {
        assert_eq!(values.len(), positions.len());
        let n = self.ctx.n();
        let mut coeffs = vec![0i64; n];
        for (&v, &p) in values.iter().zip(positions) {
            coeffs[p] = v;
        }
        let m = encode_coeff(&coeffs, self.ctx.t(), n);
        BfvEvaluator::new(&self.ctx).encrypt_sk(&m, &secrets.sk, sampler)
    }

    /// Step ① — the linear layer: multiplies by a plaintext kernel
    /// polynomial (signed coefficients) and adds a plaintext bias
    /// polynomial.
    pub fn linear(
        &self,
        ct: &BfvCiphertext,
        kernel_coeffs: &[i64],
        bias: &[(usize, i64)],
        stats: &mut PipelineStats,
    ) -> BfvCiphertext {
        let ev = BfvEvaluator::new(&self.ctx);
        let n = self.ctx.n();
        let k = encode_coeff(kernel_coeffs, self.ctx.t(), n);
        let mut out = ev.mul_plain(ct, &k);
        stats.pmult += 1;
        if !bias.is_empty() {
            let mut b = vec![0i64; n];
            for &(p, v) in bias {
                b[p] = v;
            }
            out = ev.add_plain(&out, &encode_coeff(&b, self.ctx.t(), n));
        }
        out
    }

    /// Homomorphic addition of two coefficient-encoded ciphertexts.
    pub fn add(
        &self,
        a: &BfvCiphertext,
        b: &BfvCiphertext,
        stats: &mut PipelineStats,
    ) -> BfvCiphertext {
        stats.hadd += 1;
        BfvEvaluator::new(&self.ctx).add(a, b)
    }

    /// Steps ② + ③ — modulus switch to the intermediate prime, extract the
    /// requested coefficients, switch dimension `N → n`, and drop to `t`.
    ///
    /// The final drop to `t` rounds all `n + 1` coordinates independently,
    /// which is exactly where the paper's `e_ms` term enters — use this for
    /// values that continue through the pipeline (the FBS LUT absorbs that
    /// noise). Client-bound outputs should use [`Self::extract_lwes_mid`]
    /// instead, so the rounding happens once, after decryption.
    pub fn extract_lwes(
        &self,
        ct: &BfvCiphertext,
        positions: &[usize],
        keys: &AthenaEvalKeys,
        stats: &mut PipelineStats,
    ) -> Vec<LweCiphertext> {
        self.extract_lwes_mid(ct, positions, keys, stats)
            .iter()
            .map(|c| lwe_mod_switch(c, self.ctx.t()))
            .collect()
    }

    /// Steps ② + ③ *without* the final drop to `t`: the LWEs stay at the
    /// extraction prime `q_mid`, carrying the message at scale `q_mid / t`.
    ///
    /// [`Self::decrypt_lwes`] recovers these exactly — the phase is
    /// computed in exact mod-`q_mid` arithmetic and rounded *once*, so the
    /// per-coordinate `e_ms` rounding noise (std ≈ `√((‖s‖²+1)/12)` plaintext
    /// units, enough to flip small logits) never lands on the result.
    pub fn extract_lwes_mid(
        &self,
        ct: &BfvCiphertext,
        positions: &[usize],
        keys: &AthenaEvalKeys,
        stats: &mut PipelineStats,
    ) -> Vec<LweCiphertext> {
        let small = mod_switch_rlwe(&self.ctx, ct, self.q_mid);
        stats.extracts += positions.len();
        // Extraction + dimension switch is independent per position — the
        // per-LWE loop the paper fans out across FRU lanes; run it on the
        // parallel layer (results stay in position order).
        // Work per position ≈ the key-switch inner product (bytes()/8
        // entries touched) plus the O(N) extraction copy.
        let work = keys.lwe_ksk.bytes() / 8 + self.ctx.n();
        par::parallel_map_with(par::threads_for(positions.len(), work), positions, |&p| {
            let big = sample_extract_one(&small, p);
            keys.lwe_ksk.switch(&big)
        })
    }

    /// The intermediate extraction prime (`q_primes[0]`).
    pub fn q_mid(&self) -> u64 {
        self.q_mid
    }

    /// The S2C transform the engine applies in Step ⑤ (the plan compiler
    /// reads its schedule: op counts and Galois requirements).
    pub fn slot_to_coeff(&self) -> &SlotToCoeff {
        &self.s2c
    }

    /// Expected homomorphic op counts of one [`Self::pack`] call with
    /// `nontrivial` non-trivial input LWEs, under the configured packing
    /// method. Exact for uniformly random LWE masks (an all-zero mask
    /// column/diagonal is skipped at run time with probability ≈ `t^-slots`
    /// — negligible).
    pub fn pack_expected_op_counts(
        &self,
        nontrivial: usize,
    ) -> athena_math::stats::op_stats::HomOpCounts {
        use athena_math::stats::op_stats::HomOpCounts;
        let lwe_n = self.ctx.params().lwe_n;
        match self.packing {
            PackingMethod::Column => {
                if nontrivial == 0 {
                    HomOpCounts {
                        hadd: 1,
                        ..HomOpCounts::default()
                    }
                } else {
                    HomOpCounts {
                        pmult: lwe_n as u64,
                        hadd: lwe_n as u64 + 1,
                        ..HomOpCounts::default()
                    }
                }
            }
            PackingMethod::Bsgs => BsgsPackingKey::expected_op_counts_for(lwe_n),
        }
    }

    /// The configured packing method.
    pub fn packing_method(&self) -> PackingMethod {
        self.packing
    }

    /// Step ② alone — modulus switch to the intermediate prime. The plan
    /// executor runs this as its own step so per-step op counts attribute
    /// the ModSwitch to the Conversion phase, not to whatever follows.
    pub fn mod_switch_mid(&self, ct: &BfvCiphertext) -> athena_fhe::extract::SmallRlwe {
        mod_switch_rlwe(&self.ctx, ct, self.q_mid)
    }

    /// Step ③a alone — sample extraction of the requested coefficients
    /// from a mod-switched ciphertext (still at RLWE dimension `N`).
    /// Exact arithmetic, so splitting this off the fused
    /// [`Self::extract_lwes_mid`] loop is bit-identical.
    pub fn sample_extract(
        &self,
        small: &athena_fhe::extract::SmallRlwe,
        positions: &[usize],
        stats: &mut PipelineStats,
    ) -> Vec<LweCiphertext> {
        stats.extracts += positions.len();
        let threads = par::threads_for(positions.len(), self.ctx.n());
        par::parallel_map_with(threads, positions, |&p| sample_extract_one(small, p))
    }

    /// Step ③b alone — LWE dimension switch `N → n` at `q_mid`.
    pub fn dim_switch(&self, big: &[LweCiphertext], keys: &AthenaEvalKeys) -> Vec<LweCiphertext> {
        let threads = par::threads_for(big.len(), keys.lwe_ksk.bytes() / 8);
        par::parallel_map_with(threads, big, |c| keys.lwe_ksk.switch(c))
    }

    /// Step ③c alone — the final LWE modulus drop to `t` (this rounding is
    /// exactly where the paper's `e_ms` enters; skip it for client-bound
    /// values).
    pub fn lwes_to_t(&self, lwes: &[LweCiphertext]) -> Vec<LweCiphertext> {
        lwes.iter()
            .map(|c| lwe_mod_switch(c, self.ctx.t()))
            .collect()
    }

    /// LWE-level linear combination: `a + mult·b` (used for residual skips
    /// and pooling sums — exact arithmetic at the operands' shared modulus,
    /// framework Step ③½).
    pub fn lwe_add_scaled(&self, a: &LweCiphertext, b: &LweCiphertext, mult: i64) -> LweCiphertext {
        assert_eq!(a.q(), b.q(), "lwe_add_scaled: modulus mismatch");
        let qm = Modulus::new(a.q());
        let m = qm.from_i64(mult);
        let av: Vec<u64> = a
            .a()
            .iter()
            .zip(b.a())
            .map(|(&x, &y)| qm.add(x, qm.mul(y, m)))
            .collect();
        LweCiphertext::from_parts(av, qm.add(a.b(), qm.mul(b.b(), m)), a.q())
    }

    /// Steps ④ + ⑤ — pack LWEs into slots (trivial zeros where `None`),
    /// run FBS with the fused remap LUT, optionally mask non-valid slots,
    /// and S2C back to coefficients.
    ///
    /// Slot `i` of the result (and hence coefficient `i` after S2C) holds
    /// `LUT(value of lwes[i])`.
    pub fn pack_fbs_s2c(
        &self,
        lwes: &[Option<LweCiphertext>],
        lut: &Lut,
        keys: &AthenaEvalKeys,
        stats: &mut PipelineStats,
    ) -> BfvCiphertext {
        let packed = self.pack(lwes, keys, stats);
        let bootstrapped = self.fbs(&packed, lut, lwes, keys, stats);
        self.s2c(&bootstrapped, keys, stats)
    }

    /// Steps ④ + ⑤ for several independent slot groups sharing one LUT:
    /// the LUT is interpolated once and the per-group BSGS evaluations run
    /// through the parallel batch path ([`fbs_apply_batch`]). Group `i` of
    /// the output corresponds to `groups[i]`, and results are bit-identical
    /// to calling [`AthenaEngine::pack_fbs_s2c`] per group.
    pub fn pack_fbs_s2c_batch(
        &self,
        groups: &[Vec<Option<LweCiphertext>>],
        lut: &Lut,
        keys: &AthenaEvalKeys,
        stats: &mut PipelineStats,
    ) -> Vec<BfvCiphertext> {
        let packed: Vec<BfvCiphertext> = groups.iter().map(|g| self.pack(g, keys, stats)).collect();
        let boot = fbs_apply_batch(&self.ctx, &packed, lut, &keys.rlk);
        let ev = BfvEvaluator::new(&self.ctx);
        let mut outs = Vec::with_capacity(groups.len());
        for ((mut out, fstats), g) in boot.into_iter().zip(groups) {
            stats.fbs_calls += 1;
            stats.fbs.cmult += fstats.cmult;
            stats.fbs.smult += fstats.smult;
            stats.fbs.hadd += fstats.hadd;
            let needs_mask =
                lut.get(0) != 0 && (g.len() < self.ctx.n() || g.iter().any(|o| o.is_none()));
            if needs_mask {
                let mask: Vec<u64> = (0..self.ctx.n())
                    .map(|i| u64::from(matches!(g.get(i), Some(Some(_)))))
                    .collect();
                out = ev.mul_plain(&out, &self.ctx.encoder().encode(&mask));
                stats.pmult += 1;
            }
            outs.push(self.s2c(&out, keys, stats));
        }
        outs
    }

    /// Step ④ alone.
    pub fn pack(
        &self,
        lwes: &[Option<LweCiphertext>],
        keys: &AthenaEvalKeys,
        stats: &mut PipelineStats,
    ) -> BfvCiphertext {
        let n = self.ctx.n();
        assert!(lwes.len() <= n, "more values than slots");
        let dim = self.ctx.params().lwe_n;
        let t = self.ctx.t();
        let filled: Vec<LweCiphertext> = lwes
            .iter()
            .map(|o| match o {
                Some(c) => c.clone(),
                None => LweCiphertext::trivial(0, dim, t),
            })
            .collect();
        stats.packs += 1;
        match (self.packing, &keys.pack_bsgs) {
            (PackingMethod::Bsgs, Some(k)) => k.pack(&self.ctx, &filled, &keys.gk),
            _ => keys.pack.pack(&self.ctx, &filled),
        }
    }

    /// Step ⑤'s FBS alone (with masking of non-valid slots when the LUT
    /// does not map 0 to 0).
    pub fn fbs(
        &self,
        packed: &BfvCiphertext,
        lut: &Lut,
        lwes: &[Option<LweCiphertext>],
        keys: &AthenaEvalKeys,
        stats: &mut PipelineStats,
    ) -> BfvCiphertext {
        let ev = BfvEvaluator::new(&self.ctx);
        let (mut out, fstats) = fbs_apply(&self.ctx, packed, lut, &keys.rlk);
        stats.fbs_calls += 1;
        stats.fbs.cmult += fstats.cmult;
        stats.fbs.smult += fstats.smult;
        stats.fbs.hadd += fstats.hadd;
        let needs_mask =
            lut.get(0) != 0 && (lwes.len() < self.ctx.n() || lwes.iter().any(|o| o.is_none()));
        if needs_mask {
            let mask: Vec<u64> = (0..self.ctx.n())
                .map(|i| u64::from(matches!(lwes.get(i), Some(Some(_)))))
                .collect();
            out = ev.mul_plain(&out, &self.ctx.encoder().encode(&mask));
            stats.pmult += 1;
        }
        out
    }

    /// The S2C bridge alone.
    pub fn s2c(
        &self,
        ct: &BfvCiphertext,
        keys: &AthenaEvalKeys,
        stats: &mut PipelineStats,
    ) -> BfvCiphertext {
        stats.s2c_calls += 1;
        self.s2c.apply(&self.ctx, ct, &keys.gk)
    }

    /// Client-side decryption of selected coefficients (centered).
    pub fn decrypt_coeffs(
        &self,
        ct: &BfvCiphertext,
        positions: &[usize],
        secrets: &AthenaSecrets,
    ) -> Vec<i64> {
        let ev = BfvEvaluator::new(&self.ctx);
        let plain: Poly = ev.decrypt(ct, &secrets.sk);
        let t = Modulus::new(self.ctx.t());
        positions
            .iter()
            .map(|&p| t.center(plain.values()[p]))
            .collect()
    }

    /// Client-side decryption of a batch of LWE ciphertexts (centered).
    ///
    /// Handles both pipeline encodings: mod-`t` LWEs carry the message
    /// directly in their phase, while LWEs still at the extraction prime
    /// (from [`Self::extract_lwes_mid`]) carry it at scale `q_mid / t`.
    /// For the latter the phase is computed in exact mod-`q_mid`
    /// arithmetic and rounded once — the residual error is `e·t/q_mid ≪ ½`,
    /// so these decrypt exactly whenever the ciphertext noise is below
    /// half a plaintext step.
    pub fn decrypt_lwes(&self, lwes: &[LweCiphertext], secrets: &AthenaSecrets) -> Vec<i64> {
        let t = self.ctx.t();
        let tm = Modulus::new(t);
        lwes.iter()
            .map(|c| {
                if c.q() == t {
                    return tm.center(c.decrypt(&secrets.lwe_sk));
                }
                let sk = LweSecret::from_coeffs(secrets.lwe_sk.coeffs().to_vec(), c.q());
                let qm = Modulus::new(c.q());
                let phase = qm.center(c.decrypt(&sk)) as i128;
                let q = c.q() as i128;
                let num = phase * t as i128;
                let m = if num >= 0 {
                    (num + q / 2) / q
                } else {
                    (num - q / 2) / q
                };
                m as i64
            })
            .collect()
    }

    /// Homomorphic max of two aligned LWE vectors — one round of the
    /// max-tree of \[30\]. We use the noise-robust form
    /// `max(a,b) = b + ReLU(a − b)`: a single ReLU LUT per round, and the
    /// LWE noise only perturbs the LUT input (never gets amplified by a
    /// modular halving).
    pub fn lwe_max(
        &self,
        a: &[LweCiphertext],
        b: &[LweCiphertext],
        keys: &AthenaEvalKeys,
        stats: &mut PipelineStats,
    ) -> Vec<LweCiphertext> {
        assert_eq!(a.len(), b.len());
        let t = self.ctx.t();
        // d = a - b at LWE level
        let diffs: Vec<Option<LweCiphertext>> = a
            .iter()
            .zip(b)
            .map(|(x, y)| Some(self.lwe_add_scaled(x, y, -1)))
            .collect();
        // ReLU(d) via one FBS pass
        let relu_lut = Lut::from_signed_fn(t, |x| x.max(0));
        let packed = self.pack(&diffs, keys, stats);
        let relu_ct = self.fbs(&packed, &relu_lut, &diffs, keys, stats);
        let relu_coeff = self.s2c(&relu_ct, keys, stats);
        let positions: Vec<usize> = (0..a.len()).collect();
        let relu_lwes = self.extract_lwes(&relu_coeff, &positions, keys, stats);
        b.iter()
            .zip(&relu_lwes)
            .map(|(y, r)| self.lwe_add_scaled(y, r, 1))
            .collect()
    }
}

impl AthenaEngine {
    /// Homomorphic softmax over a vector of LWE-held logits (§3.2.3):
    ///
    /// 1. `f(x) = ⌊e^{x/in_div}·exp_scale⌉` by one FBS pass;
    /// 2. the denominator `Σ e^{x_j}` by exact LWE additions, then the
    ///    inverse LUT `g(v) = ⌊inv_num / v⌉` by a second FBS pass;
    /// 3. one CMult joins numerator and denominator.
    ///
    /// Outputs are LWEs of `⌊softmax_i · out_scale⌉`-ish values (up to the
    /// two LUT roundings); `out_scale = exp_scale_sum / inv` granularity is
    /// chosen by the caller through the scale parameters.
    pub fn encrypted_softmax(
        &self,
        logits: &[LweCiphertext],
        in_div: f64,
        exp_scale: f64,
        inv_num: f64,
        keys: &AthenaEvalKeys,
        stats: &mut PipelineStats,
    ) -> Vec<LweCiphertext> {
        let t = self.ctx.t();
        let n = logits.len();
        assert!(n >= 1 && 2 * n <= self.ctx.n());
        // Step 1: exp LUT.
        let exp_lut = Lut::from_signed_fn(t, move |x| {
            ((x as f64 / in_div).exp() * exp_scale).round() as i64
        });
        let slots: Vec<Option<LweCiphertext>> = logits.iter().cloned().map(Some).collect();
        let packed = self.pack(&slots, keys, stats);
        let exp_ct = self.fbs(&packed, &exp_lut, &slots, keys, stats);
        let exp_coeff = self.s2c(&exp_ct, keys, stats);
        let positions: Vec<usize> = (0..n).collect();
        let exp_lwes = self.extract_lwes(&exp_coeff, &positions, keys, stats);
        // Step 2: denominator + inverse LUT.
        let mut denom = exp_lwes[0].clone();
        for e in &exp_lwes[1..] {
            denom = self.lwe_add_scaled(&denom, e, 1);
        }
        let inv_lut = Lut::from_signed_fn(t, move |v| {
            if v <= 0 {
                0
            } else {
                (inv_num / v as f64).round() as i64
            }
        });
        let denom_slots: Vec<Option<LweCiphertext>> = (0..n).map(|_| Some(denom.clone())).collect();
        let packed_d = self.pack(&denom_slots, keys, stats);
        let inv_ct = self.fbs(&packed_d, &inv_lut, &denom_slots, keys, stats);
        // Step 3: CMult numerator × inverse (both slot-encoded).
        let num_ct = self.fbs(
            &self.pack(
                &exp_lwes.iter().cloned().map(Some).collect::<Vec<_>>(),
                keys,
                stats,
            ),
            &Lut::from_signed_fn(t, |x| x),
            &slots,
            keys,
            stats,
        );
        let ev = BfvEvaluator::new(&self.ctx);
        let prod = ev.mul(&num_ct, &inv_ct, &keys.rlk);
        stats.fbs.cmult += 1;
        let prod_coeff = self.s2c(&prod, keys, stats);
        self.extract_lwes(&prod_coeff, &positions, keys, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fx {
        engine: AthenaEngine,
        secrets: AthenaSecrets,
        keys: AthenaEvalKeys,
        sampler: Sampler,
    }

    fn setup() -> Fx {
        let engine = AthenaEngine::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(90210);
        let (secrets, keys) = engine.keygen(&mut sampler);
        Fx {
            engine,
            secrets,
            keys,
            sampler,
        }
    }

    #[test]
    fn one_full_loop_linear_then_relu_lut() {
        // A 1-channel 4×4 input, 2×2 kernel, conv → extract → pack →
        // FBS(ReLU + remap/4) → S2C, checked against plain integer math.
        let mut f = setup();
        let eng = &f.engine;
        use crate::encoding::ConvEncoder;
        use athena_nn::models::ConvShape;
        let shape = ConvShape {
            hw: 4,
            c_in: 1,
            c_out: 1,
            k: 2,
            stride: 1,
            padding: 0,
        };
        let enc = ConvEncoder::new(shape, eng.context().n());
        let img: Vec<i64> = (0..16).map(|i| (i % 7) - 3).collect();
        let kernel: Vec<i64> = vec![2, -1, 3, 1];
        let m = athena_nn::tensor::ITensor::from_vec(&[1, 4, 4], img.clone());
        let kt = athena_nn::tensor::ITensor::from_vec(&[1, 1, 2, 2], kernel.clone());
        let expected_acc = crate::encoding::direct_conv_valid(&m, &kt);

        let mut stats = PipelineStats::default();
        let coeffs = enc.encode_input(&m);
        let positions: Vec<usize> = (0..eng.context().n()).collect();
        let ct = eng.encrypt_at(&coeffs, &positions, &f.secrets, &mut f.sampler);
        let conv = eng.linear(&ct, &enc.encode_kernel(&kt), &[], &mut stats);

        // verify accumulators by decryption
        let out_positions: Vec<usize> = (0..3)
            .flat_map(|y| (0..3).map(move |x| (y, x)))
            .map(|(y, x)| enc.output_index(0, y, x))
            .collect();
        let accs = eng.decrypt_coeffs(&conv, &out_positions, &f.secrets);
        assert_eq!(accs, expected_acc.data());

        // steps 2-3
        let lwes = eng.extract_lwes(&conv, &out_positions, &f.keys, &mut stats);
        let dec = eng.decrypt_lwes(&lwes, &f.secrets);
        for (i, (&d, &want)) in dec.iter().zip(expected_acc.data()).enumerate() {
            assert!((d - want).abs() <= 10, "lwe {i}: {d} vs {want}");
        }

        // steps 4-5: ReLU with remap scale 4
        let lut = Lut::from_signed_fn(eng.context().t(), |x| if x > 0 { (x + 2) / 4 } else { 0 });
        let opt: Vec<Option<LweCiphertext>> = lwes.into_iter().map(Some).collect();
        let result = eng.pack_fbs_s2c(&opt, &lut, &f.keys, &mut stats);
        let got = eng.decrypt_coeffs(&result, &(0..9).collect::<Vec<_>>(), &f.secrets);
        for (i, (&g, &acc)) in got.iter().zip(expected_acc.data()).enumerate() {
            let want = if acc > 0 { (acc + 2) / 4 } else { 0 };
            assert!(
                (g - want).abs() <= 2,
                "slot {i}: got {g}, want {want} (acc {acc})"
            );
        }
        assert_eq!(stats.fbs_calls, 1);
        assert_eq!(stats.packs, 1);
        assert_eq!(stats.s2c_calls, 1);
        assert!(stats.fbs.cmult > 0 && stats.fbs.smult > 0);
    }

    #[test]
    fn bsgs_packing_engine_runs_the_loop() {
        // Ablation 3: the BSGS-packing engine produces the same LUT results
        // as the column engine (both compute the identical plaintext map).
        let engine = AthenaEngine::with_packing(BfvParams::test_small(), PackingMethod::Bsgs);
        let mut sampler = Sampler::from_seed(90211);
        let (secrets, keys) = engine.keygen(&mut sampler);
        assert!(keys.pack_bsgs.is_some());
        let n = engine.context().n();
        let t = engine.context().t();
        let mut stats = PipelineStats::default();
        let values: Vec<i64> = (0..n as i64).map(|i| (i % 33) - 16).collect();
        let positions: Vec<usize> = (0..n).collect();
        let ct = engine.encrypt_at(&values, &positions, &secrets, &mut sampler);
        let lwes = engine.extract_lwes(&ct, &positions, &keys, &mut stats);
        let lut = Lut::from_signed_fn(t, |x| x.max(0));
        let opt: Vec<_> = lwes.into_iter().map(Some).collect();
        let out = engine.pack_fbs_s2c(&opt, &lut, &keys, &mut stats);
        let got = engine.decrypt_coeffs(&out, &positions, &secrets);
        let close = got
            .iter()
            .zip(&values)
            .filter(|(&g, &v)| (g - v.max(0)).abs() <= 8)
            .count();
        assert!(close as f64 > 0.9 * n as f64, "{close}/{n} close");
    }

    #[test]
    fn batched_loop_matches_per_group_calls() {
        // pack_fbs_s2c_batch must agree with per-group pack_fbs_s2c, for any
        // worker count (the shared-interpolation batch path is bit-exact).
        let mut f = setup();
        let t = f.engine.context().t();
        let tm = Modulus::new(t);
        let groups: Vec<Vec<Option<LweCiphertext>>> = (0..2i64)
            .map(|g| {
                (0..8i64)
                    .map(|i| {
                        Some(LweCiphertext::encrypt(
                            tm.from_i64((g * 8 + i) % 20 - 10),
                            &f.secrets.lwe_sk,
                            &mut f.sampler,
                        ))
                    })
                    .collect()
            })
            .collect();
        let eng = &f.engine;
        let lut = Lut::from_signed_fn(t, |x| x.max(0));
        let mut s1 = PipelineStats::default();
        let singles: Vec<_> = groups
            .iter()
            .map(|g| eng.pack_fbs_s2c(g, &lut, &f.keys, &mut s1))
            .collect();
        par::set_threads(1);
        let mut s2 = PipelineStats::default();
        let b1 = eng.pack_fbs_s2c_batch(&groups, &lut, &f.keys, &mut s2);
        par::set_threads(4);
        let mut s3 = PipelineStats::default();
        let b4 = eng.pack_fbs_s2c_batch(&groups, &lut, &f.keys, &mut s3);
        par::set_threads(0);
        let pos: Vec<usize> = (0..8).collect();
        for i in 0..groups.len() {
            let want = eng.decrypt_coeffs(&singles[i], &pos, &f.secrets);
            assert_eq!(
                eng.decrypt_coeffs(&b1[i], &pos, &f.secrets),
                want,
                "group {i}"
            );
            assert_eq!(
                eng.decrypt_coeffs(&b4[i], &pos, &f.secrets),
                want,
                "group {i}"
            );
        }
        for s in [&s2, &s3] {
            assert_eq!(s.fbs_calls, s1.fbs_calls);
            assert_eq!(s.packs, s1.packs);
            assert_eq!(s.s2c_calls, s1.s2c_calls);
            assert_eq!(s.fbs, s1.fbs);
        }
    }

    #[test]
    fn lwe_scaled_addition_for_skips() {
        let mut f = setup();
        let t = f.engine.context().t();
        let a = LweCiphertext::encrypt(
            Modulus::new(t).from_i64(20),
            &f.secrets.lwe_sk,
            &mut f.sampler,
        );
        let b = LweCiphertext::encrypt(
            Modulus::new(t).from_i64(-3),
            &f.secrets.lwe_sk,
            &mut f.sampler,
        );
        let c = f.engine.lwe_add_scaled(&a, &b, 5);
        let dec = f.engine.decrypt_lwes(&[c], &f.secrets)[0];
        // the multiplier scales b's noise by 5 as well (σ ≈ 16 here)
        assert!((dec - 5).abs() <= 60, "20 + 5·(−3) = 5, got {dec}");
    }

    #[test]
    fn client_bound_extraction_decrypts_exactly() {
        // Mod-`t` extraction rounds every LWE coordinate independently —
        // the e_ms noise the FBS LUT absorbs, but which would land raw on
        // client-bound logits (±1–2 plaintext units on test_small). The
        // q_mid-resident path must decrypt *exactly*: the phase is computed
        // in exact modular arithmetic and rounded once.
        let mut f = setup();
        let positions: Vec<usize> = (0..64).collect();
        let values: Vec<i64> = (0..64).map(|i| (i * 7 % 201) - 100).collect();
        let ct = f
            .engine
            .encrypt_at(&values, &positions, &f.secrets, &mut f.sampler);
        let mut stats = PipelineStats::default();
        let mid = f
            .engine
            .extract_lwes_mid(&ct, &positions, &f.keys, &mut stats);
        assert_ne!(mid[0].q(), f.engine.context().t(), "LWEs stay at q_mid");
        let dec = f.engine.decrypt_lwes(&mid, &f.secrets);
        assert_eq!(dec, values, "client-bound extraction must be exact");
    }

    #[test]
    fn homomorphic_softmax() {
        let mut f = setup();
        let t = f.engine.context().t();
        let tm = Modulus::new(t);
        // Logits chosen so exp values and products stay within t = 257.
        let logits_plain: Vec<i64> = vec![8, 0, -8];
        let lwes: Vec<LweCiphertext> = logits_plain
            .iter()
            .map(|&v| LweCiphertext::encrypt(tm.from_i64(v), &f.secrets.lwe_sk, &mut f.sampler))
            .collect();
        let mut stats = PipelineStats::default();
        // exp(x/8)·5 ∈ {14, 5, 2}; sum = 21; inv = round(105/21) = 5;
        // products {70, 25, 10} < t/2.
        let out = f
            .engine
            .encrypted_softmax(&lwes, 8.0, 5.0, 105.0, &f.keys, &mut stats);
        let dec = f.engine.decrypt_lwes(&out, &f.secrets);
        // Expected (up to LUT rounding and e_ms): the dominant logit's
        // softmax mass clearly exceeds the others (small entries carry
        // multiplied noise from the CMult, so only dominance is asserted).
        assert!(
            dec[0] > dec[1] + 20 && dec[0] > dec[2] + 20,
            "softmax order {dec:?}"
        );
        // Compare against the plain two-LUT pipeline.
        let plain: Vec<i64> = {
            let exps: Vec<i64> = logits_plain
                .iter()
                .map(|&x| ((x as f64 / 8.0).exp() * 5.0).round() as i64)
                .collect();
            let sum: i64 = exps.iter().sum();
            let inv = (105.0 / sum as f64).round() as i64;
            exps.iter().map(|&e| e * inv).collect()
        };
        for (i, (&got, &want)) in dec.iter().zip(&plain).enumerate() {
            assert!((got - want).abs() <= 35, "softmax {i}: {got} vs {want}");
        }
        assert_eq!(stats.fbs_calls, 3, "exp + inverse + identity bridge");
    }

    #[test]
    fn homomorphic_max_tree_round() {
        let mut f = setup();
        let t = f.engine.context().t();
        let tm = Modulus::new(t);
        let xs: Vec<i64> = vec![10, -20, 32, 5];
        let ys: Vec<i64> = vec![-10, 30, 31, 5];
        let enc = |v: i64, f: &mut Fx| {
            LweCiphertext::encrypt(tm.from_i64(v), &f.secrets.lwe_sk, &mut f.sampler)
        };
        let a: Vec<LweCiphertext> = xs.iter().map(|&v| enc(v, &mut f)).collect();
        let b: Vec<LweCiphertext> = ys.iter().map(|&v| enc(v, &mut f)).collect();
        let mut stats = PipelineStats::default();
        let m = f.engine.lwe_max(&a, &b, &f.keys, &mut stats);
        let dec = f.engine.decrypt_lwes(&m, &f.secrets);
        for (i, ((&x, &y), &got)) in xs.iter().zip(&ys).zip(&dec).enumerate() {
            let want = x.max(y);
            assert!((got - want).abs() <= 6, "max {i}: got {got}, want {want}");
        }
        assert_eq!(stats.fbs_calls, 1, "one |·| LUT per max round");
    }
}
