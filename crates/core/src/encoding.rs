//! Coefficient encoding of convolution (Eq. 1) and the packing strategies
//! compared in Table 2.
//!
//! With input `M̂[c·HW + h·W + w] = M[c,h,w]` and kernel
//! `K̂[T − c'·C_in·HW − c·HW − i·W − j] = K[c',c,i,j]`,
//! `T = HW(C_out·C_in − 1) + W(W_k − 1) + W_k − 1`, the polynomial product
//! `M̂·K̂` carries output `O[c',y,x] = Σ_{c,i,j} M[c,y+i,x+j]·K[c',c,i,j]`
//! at coefficient `T − c'·C_in·HW + y·W + x`. One `PMult` therefore computes
//! a whole multi-channel multi-kernel convolution with **zero rotations**
//! (Table 3's `Conv` row).
//!
//! When `C_out·C_in·HW > N` the layer is split into channel groups.
//! *Cheetah* \[16\] packs input channels first, so each result ciphertext
//! carries few valid outputs; *Athena* packs output channels first, so the
//! results land compactly (Table 2).

use std::fmt;

use athena_nn::models::ConvShape;
use athena_nn::tensor::ITensor;

/// Typed failure of a coefficient encoding. These are the shape checks a
/// *served* model can violate (the serving path reaches them with
/// user-supplied architectures), so the `try_*` constructors surface them
/// as values; the panicking wrappers remain for internal call sites that
/// have already validated their shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodingError {
    /// One input channel (plus the kernel's coefficient margin) does not
    /// fit the ring degree: `hw² + margin ≥ n`.
    ChannelTooLarge {
        /// Spatial size `H·W` of one channel.
        hw: usize,
        /// Kernel margin `HW(K−1) + K−1`.
        margin: usize,
        /// Ring degree.
        n: usize,
    },
    /// The conv group's top coefficient `T` plus one channel span exceeds
    /// the ring degree.
    GroupTooLarge {
        /// `T` of Eq. 1 for the group.
        t_index: usize,
        /// Input span `C_in·H·W` the product must also hold.
        input_len: usize,
        /// Ring degree.
        n: usize,
    },
    /// The input tensor's shape differs from the encoder's layer shape.
    InputShapeMismatch {
        /// Shape the encoder was built for (`[C_in, H, W]`).
        expected: [usize; 3],
        /// Shape the caller supplied.
        got: Vec<usize>,
    },
    /// The kernel tensor's shape differs from the encoder's layer shape.
    KernelShapeMismatch {
        /// Shape the encoder was built for (`[C_out, C_in, K, K]`).
        expected: [usize; 4],
        /// Shape the caller supplied.
        got: Vec<usize>,
    },
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::ChannelTooLarge { hw, margin, n } => write!(
                f,
                "one channel must fit in the ring: HW {hw} + margin {margin} >= N {n}"
            ),
            EncodingError::GroupTooLarge {
                t_index,
                input_len,
                n,
            } => write!(
                f,
                "conv group does not fit degree {n} (T = {t_index}, input span {input_len})"
            ),
            EncodingError::InputShapeMismatch { expected, got } => {
                write!(
                    f,
                    "input shape mismatch: expected {expected:?}, got {got:?}"
                )
            }
            EncodingError::KernelShapeMismatch { expected, got } => {
                write!(
                    f,
                    "kernel shape mismatch: expected {expected:?}, got {got:?}"
                )
            }
        }
    }
}

impl std::error::Error for EncodingError {}

/// How a convolution layer is split across ciphertexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packing {
    /// Output channels per result ciphertext.
    pub co_per_ct: usize,
    /// Input channels per input ciphertext.
    pub ci_per_ct: usize,
    /// Number of input ciphertexts.
    pub input_cts: usize,
    /// Number of result ciphertexts.
    pub result_cts: usize,
    /// PMult count (one per (co-group, ci-group) pair).
    pub pmults: usize,
    /// HAdd count (partial-sum accumulation).
    pub hadds: usize,
}

impl Packing {
    /// Fraction of result-polynomial coefficients holding valid outputs.
    pub fn valid_ratio(&self, shape: &ConvShape, n: usize) -> f64 {
        let out_per_ct = self.co_per_ct * shape.out_hw() * shape.out_hw();
        out_per_ct as f64 / n as f64
    }
}

/// Safety margin needed so no product coefficient exceeds the degree:
/// the kernel's intra-channel span.
fn margin(shape: &ConvShape) -> usize {
    shape.hw * (shape.k - 1) + shape.k - 1
}

/// Largest divisor of `x` that is `<= cap` (at least 1).
fn divisor_at_most(x: usize, cap: usize) -> usize {
    (1..=cap.min(x))
        .rev()
        .find(|d| x.is_multiple_of(*d))
        .unwrap_or(1)
}

/// Athena's output-channel-first packing: maximize output channels per
/// result ciphertext, then fit input-channel groups.
///
/// # Panics
///
/// Panics if one channel does not fit the ring
/// ([`try_athena_packing`] is the fallible form).
pub fn athena_packing(shape: &ConvShape, n: usize) -> Packing {
    try_athena_packing(shape, n).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`athena_packing`]: returns a typed error instead of
/// panicking when one channel does not fit the ring.
pub fn try_athena_packing(shape: &ConvShape, n: usize) -> Result<Packing, EncodingError> {
    let hw = shape.hw * shape.hw;
    let m = margin(shape);
    if hw + m >= n {
        return Err(EncodingError::ChannelTooLarge { hw, margin: m, n });
    }
    // Largest ci group with room for at least one output channel.
    // Prefer maximizing co first: try co from C_out downward (pow2 splits).
    let mut best: Option<(usize, usize)> = None;
    let mut co = divisor_at_most(shape.c_out, shape.c_out);
    loop {
        // max ci group that fits with this co
        let budget = n.saturating_sub(m);
        let max_ci = budget / (co * hw);
        if max_ci >= 1 {
            let ci = divisor_at_most(shape.c_in, max_ci.min(shape.c_in));
            if best.is_none() {
                best = Some((co, ci));
                break;
            }
        }
        if co == 1 {
            break;
        }
        co /= 2;
    }
    let (co, ci) = best.expect("at least (1,1) fits");
    let co_groups = shape.c_out / co;
    let ci_groups = shape.c_in / ci;
    Ok(Packing {
        co_per_ct: co,
        ci_per_ct: ci,
        input_cts: ci_groups,
        result_cts: co_groups,
        pmults: co_groups * ci_groups,
        hadds: co_groups * (ci_groups - 1),
    })
}

/// Cheetah's input-channel-first packing: the input ciphertext packs as many
/// input channels as fit; each result ciphertext carries the outputs of as
/// many output channels as fit *given that full-C_in packing*.
pub fn cheetah_packing(shape: &ConvShape, n: usize) -> Packing {
    let hw = shape.hw * shape.hw;
    let m = margin(shape);
    let ci = divisor_at_most(
        shape.c_in,
        ((n.saturating_sub(m)) / hw).max(1).min(shape.c_in),
    );
    // With ci input channels resident, each extra output channel needs a
    // ci·HW stride in the result polynomial.
    let co = divisor_at_most(
        shape.c_out,
        ((n.saturating_sub(m)) / (ci * hw)).max(1).min(shape.c_out),
    );
    let ci_groups = shape.c_in / ci;
    let co_groups = shape.c_out / co;
    Packing {
        co_per_ct: co,
        ci_per_ct: ci,
        input_cts: ci_groups,
        result_cts: co_groups,
        pmults: co_groups * ci_groups,
        hadds: co_groups * (ci_groups - 1),
    }
}

/// A fully specified single-group conv encoding: `co_per_ct` output channels
/// and `ci_per_ct` input channels in one ciphertext pair.
#[derive(Debug, Clone)]
pub struct ConvEncoder {
    /// Layer shape (with `c_in`/`c_out` replaced by the group sizes).
    pub shape: ConvShape,
    /// Ring degree.
    pub n: usize,
}

impl ConvEncoder {
    /// Creates an encoder for a channel group.
    ///
    /// # Panics
    ///
    /// Panics if the group does not fit the ring degree
    /// ([`ConvEncoder::try_new`] is the fallible form).
    pub fn new(shape: ConvShape, n: usize) -> Self {
        Self::try_new(shape, n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ConvEncoder::new`]: returns a typed error when the group
    /// does not fit the ring degree.
    pub fn try_new(shape: ConvShape, n: usize) -> Result<Self, EncodingError> {
        let t_idx = Self::t_index(&shape);
        let input_len = shape.c_in * shape.hw * shape.hw;
        if t_idx + input_len > n {
            return Err(EncodingError::GroupTooLarge {
                t_index: t_idx,
                input_len,
                n,
            });
        }
        Ok(Self { shape, n })
    }

    /// `T` of Eq. 1.
    fn t_index(shape: &ConvShape) -> usize {
        let hw = shape.hw * shape.hw;
        hw * (shape.c_out * shape.c_in - 1) + shape.hw * (shape.k - 1) + shape.k - 1
    }

    /// Encodes the input feature map `[C_in, H, W]` into polynomial
    /// coefficients (length `N`, signed values to be reduced mod `t`).
    ///
    /// # Panics
    ///
    /// Panics on an input-shape mismatch
    /// ([`ConvEncoder::try_encode_input`] is the fallible form).
    pub fn encode_input(&self, m: &ITensor) -> Vec<i64> {
        self.try_encode_input(m).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ConvEncoder::encode_input`]: returns a typed error on an
    /// input-shape mismatch.
    pub fn try_encode_input(&self, m: &ITensor) -> Result<Vec<i64>, EncodingError> {
        let s = &self.shape;
        if m.shape() != [s.c_in, s.hw, s.hw] {
            return Err(EncodingError::InputShapeMismatch {
                expected: [s.c_in, s.hw, s.hw],
                got: m.shape().to_vec(),
            });
        }
        let hw = s.hw * s.hw;
        let mut out = vec![0i64; self.n];
        for c in 0..s.c_in {
            for h in 0..s.hw {
                for w in 0..s.hw {
                    out[c * hw + h * s.hw + w] = m.data()[(c * s.hw + h) * s.hw + w];
                }
            }
        }
        Ok(out)
    }

    /// Encodes the kernel `[C_out, C_in, K, K]` into polynomial coefficients.
    ///
    /// # Panics
    ///
    /// Panics on a kernel-shape mismatch
    /// ([`ConvEncoder::try_encode_kernel`] is the fallible form).
    pub fn encode_kernel(&self, k: &ITensor) -> Vec<i64> {
        self.try_encode_kernel(k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ConvEncoder::encode_kernel`]: returns a typed error on a
    /// kernel-shape mismatch.
    pub fn try_encode_kernel(&self, k: &ITensor) -> Result<Vec<i64>, EncodingError> {
        let s = &self.shape;
        if k.shape() != [s.c_out, s.c_in, s.k, s.k] {
            return Err(EncodingError::KernelShapeMismatch {
                expected: [s.c_out, s.c_in, s.k, s.k],
                got: k.shape().to_vec(),
            });
        }
        let hw = s.hw * s.hw;
        let t = Self::t_index(s);
        let mut out = vec![0i64; self.n];
        for co in 0..s.c_out {
            for ci in 0..s.c_in {
                for i in 0..s.k {
                    for j in 0..s.k {
                        let idx = t - co * s.c_in * hw - ci * hw - i * s.hw - j;
                        out[idx] = k.data()[((co * s.c_in + ci) * s.k + i) * s.k + j];
                    }
                }
            }
        }
        Ok(out)
    }

    /// Coefficient index of output `(c_out, y, x)` — valid for
    /// `y, x ∈ [0, H − K]` (stride-1 positions; strided layers subsample).
    pub fn output_index(&self, c_out: usize, y: usize, x: usize) -> usize {
        let s = &self.shape;
        let hw = s.hw * s.hw;
        Self::t_index(s) - c_out * s.c_in * hw + y * s.hw + x
    }

    /// Number of valid stride-1 output positions per channel
    /// (`(H − K + 1)²` on the padded input).
    pub fn valid_out_hw(&self) -> usize {
        self.shape.hw - self.shape.k + 1
    }

    /// Reference plaintext check: computes the negacyclic product of the two
    /// encodings over the integers and reads the outputs back.
    pub fn conv_via_polynomial(&self, m: &ITensor, k: &ITensor) -> ITensor {
        let a = self.encode_input(m);
        let b = self.encode_kernel(k);
        // negacyclic product over i128 to avoid overflow
        let n = self.n;
        let mut prod = vec![0i128; n];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                if bj == 0 {
                    continue;
                }
                let p = ai as i128 * bj as i128;
                let idx = i + j;
                if idx < n {
                    prod[idx] += p;
                } else {
                    prod[idx - n] -= p;
                }
            }
        }
        let o = self.valid_out_hw();
        let mut out = ITensor::zeros(&[self.shape.c_out, o, o]);
        for co in 0..self.shape.c_out {
            for y in 0..o {
                for x in 0..o {
                    out.data_mut()[(co * o + y) * o + x] = prod[self.output_index(co, y, x)] as i64;
                }
            }
        }
        out
    }
}

/// Direct integer convolution (valid positions, stride 1) — the reference
/// the encoding is tested against.
pub fn direct_conv_valid(m: &ITensor, k: &ITensor) -> ITensor {
    let (c_in, h, w) = (m.shape()[0], m.shape()[1], m.shape()[2]);
    let (c_out, kk) = (k.shape()[0], k.shape()[2]);
    let o = h - kk + 1;
    let mut out = ITensor::zeros(&[c_out, o, o]);
    for co in 0..c_out {
        for y in 0..o {
            for x in 0..o {
                let mut acc = 0i64;
                for ci in 0..c_in {
                    for i in 0..kk {
                        for j in 0..kk {
                            acc += m.data()[(ci * h + y + i) * w + x + j]
                                * k.data()[((co * c_in + ci) * kk + i) * kk + j];
                        }
                    }
                }
                out.data_mut()[(co * o + y) * o + x] = acc;
            }
        }
    }
    out
}

/// The six conv shapes of Table 2.
pub fn table2_shapes() -> Vec<ConvShape> {
    vec![
        ConvShape {
            hw: 32,
            c_in: 3,
            c_out: 16,
            k: 3,
            stride: 1,
            padding: 1,
        },
        ConvShape {
            hw: 32,
            c_in: 16,
            c_out: 16,
            k: 3,
            stride: 1,
            padding: 1,
        },
        ConvShape {
            hw: 32,
            c_in: 16,
            c_out: 32,
            k: 1,
            stride: 2,
            padding: 0,
        },
        ConvShape {
            hw: 16,
            c_in: 32,
            c_out: 32,
            k: 3,
            stride: 1,
            padding: 1,
        },
        ConvShape {
            hw: 16,
            c_in: 32,
            c_out: 64,
            k: 1,
            stride: 2,
            padding: 0,
        },
        ConvShape {
            hw: 8,
            c_in: 64,
            c_out: 64,
            k: 3,
            stride: 1,
            padding: 1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_math::sampler::Sampler;

    fn random_itensor(shape: &[usize], bound: i64, s: &mut Sampler) -> ITensor {
        ITensor::from_vec(
            shape,
            (0..shape.iter().product::<usize>())
                .map(|_| s.uniform_mod(2 * bound as u64 + 1) as i64 - bound)
                .collect(),
        )
    }

    #[test]
    fn encoding_computes_convolution() {
        let mut s = Sampler::from_seed(41);
        for (c_in, c_out, hw, k) in [
            (1usize, 1usize, 6usize, 3usize),
            (2, 2, 5, 3),
            (3, 4, 4, 2),
            (2, 3, 4, 1),
        ] {
            let shape = ConvShape {
                hw,
                c_in,
                c_out,
                k,
                stride: 1,
                padding: 0,
            };
            let enc = ConvEncoder::new(shape, 1024);
            let m = random_itensor(&[c_in, hw, hw], 7, &mut s);
            let kk = random_itensor(&[c_out, c_in, k, k], 7, &mut s);
            assert_eq!(
                enc.conv_via_polynomial(&m, &kk),
                direct_conv_valid(&m, &kk),
                "shape {shape:?}"
            );
        }
    }

    #[test]
    fn packing_ratios_beat_cheetah_on_all_table2_rows() {
        let n = 1 << 15;
        for shape in table2_shapes() {
            let a = athena_packing(&shape, n);
            let c = cheetah_packing(&shape, n);
            let ra = a.valid_ratio(&shape, n);
            let rc = c.valid_ratio(&shape, n);
            assert!(
                ra >= rc,
                "Athena ratio {ra} below Cheetah {rc} for {shape:?}"
            );
        }
    }

    #[test]
    fn athena_ratios_match_table2_rows() {
        // Rows where the paper's numbers follow directly from
        // out-channel-first packing at N = 2^15.
        let n = 1 << 15;
        let shapes = table2_shapes();
        let expect = [0.50, 0.50, 0.25, 0.25, 0.125, 0.125];
        for (shape, &want) in shapes.iter().zip(&expect) {
            let p = athena_packing(shape, n);
            let ratio = p.valid_ratio(shape, n);
            assert!(
                (ratio - want).abs() < 1e-9
                    || (ratio - want / 2.0).abs() < 1e-9
                    || (ratio - want * 2.0).abs() < 1e-9,
                "{shape:?}: ratio {ratio} vs paper {want}"
            );
        }
    }

    #[test]
    fn packing_respects_capacity() {
        let n = 1 << 15;
        for shape in table2_shapes() {
            let p = athena_packing(&shape, n);
            let hw = shape.hw * shape.hw;
            assert!(p.co_per_ct * p.ci_per_ct * hw <= n, "{shape:?} overpacked");
            assert_eq!(p.result_cts * p.co_per_ct, shape.c_out);
            assert_eq!(p.input_cts * p.ci_per_ct, shape.c_in);
        }
    }

    #[test]
    fn strided_outputs_are_subsampled_valid_positions() {
        // stride-2 layers read every other valid position.
        let shape = ConvShape {
            hw: 6,
            c_in: 1,
            c_out: 1,
            k: 2,
            stride: 2,
            padding: 0,
        };
        let enc = ConvEncoder::new(ConvShape { stride: 1, ..shape }, 256);
        let mut s = Sampler::from_seed(42);
        let m = random_itensor(&[1, 6, 6], 5, &mut s);
        let k = random_itensor(&[1, 1, 2, 2], 5, &mut s);
        let full = enc.conv_via_polynomial(&m, &k); // 5×5 stride-1 grid
                                                    // direct stride-2
        for y in 0..3 {
            for x in 0..3 {
                let direct: i64 = (0..2)
                    .flat_map(|i| (0..2).map(move |j| (i, j)))
                    .map(|(i, j)| m.data()[(2 * y + i) * 6 + 2 * x + j] * k.data()[i * 2 + j])
                    .sum();
                assert_eq!(full.data()[(5 * (2 * y)) + 2 * x], direct);
            }
        }
    }
}
