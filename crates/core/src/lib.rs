//! # athena-core
//!
//! The Athena framework — the paper's primary contribution.
//!
//! * [`encoding`] — Eq. 1's coefficient encoding of convolution and the
//!   Table 2 packing strategies (Athena output-channel-first vs Cheetah
//!   input-channel-first).
//! * [`pipeline`] — the five-step loop over real cryptography: linear →
//!   mod-switch → sample-extract/dimension-switch → pack → FBS(+remap) →
//!   S2C, plus the homomorphic max-tree and softmax of §3.2.3.
//! * [`plan`] — the execution-plan IR: a typed per-layer step program
//!   compiled from a quantized model, with layouts, LUTs, Galois elements,
//!   key requirements, and analytic op counts resolved up front. One
//!   generic interpreter drives the plan across three backends (encrypted,
//!   noise simulation, analytic counting); the same plan also feeds the
//!   accelerator trace, key generation, and the cached batched
//!   `InferenceSession`.
//! * [`infer`] — end-to-end encrypted inference of a quantized model (a
//!   thin compile-then-execute wrapper over [`plan`]).
//! * [`simulate`] — the validated `e_ms` noise model driving full-scale
//!   accuracy experiments (Table 5, Fig. 4, Fig. 12).
//! * [`fuzz`] — deterministic differential fuzzing: a seeded model-zoo
//!   generator run through four oracles (plain reference, fast sim,
//!   plan-driven sim, real encryption), with a shrinker and a pinned
//!   regression corpus.
//! * [`trace`] — per-layer FHE-op counts at production parameters, consumed
//!   by the accelerator model.
//! * [`complexity`] / [`paramsets`] — Tables 3 and 1.
//!
//! ## Example: one loop iteration under real FHE
//!
//! ```no_run
//! use athena_core::pipeline::{AthenaEngine, PipelineStats};
//! use athena_fhe::fbs::Lut;
//! use athena_fhe::params::BfvParams;
//! use athena_math::sampler::Sampler;
//!
//! let engine = AthenaEngine::new(BfvParams::test_small());
//! let mut sampler = Sampler::from_seed(1);
//! let (secrets, keys) = engine.keygen(&mut sampler);
//! let mut stats = PipelineStats::default();
//! let n = engine.context().n();
//! let positions: Vec<usize> = (0..n).collect();
//! let ct = engine.encrypt_at(&vec![5; n], &positions, &secrets, &mut sampler);
//! let lwes = engine.extract_lwes(&ct, &positions, &keys, &mut stats);
//! let relu = Lut::from_signed_fn(engine.context().t(), |x| x.max(0));
//! let opt: Vec<_> = lwes.into_iter().map(Some).collect();
//! let refreshed = engine.pack_fbs_s2c(&opt, &relu, &keys, &mut stats);
//! let out = engine.decrypt_coeffs(&refreshed, &positions, &secrets);
//! assert!(out.iter().all(|&v| (v - 5).abs() <= 4));
//! ```

pub mod complexity;
pub mod encoding;
pub mod fuzz;
pub mod infer;
pub mod paramsets;
pub mod pipeline;
pub mod plan;
pub mod simulate;
pub mod trace;
pub mod util;
