//! Noise-faithful fast simulation of encrypted inference.
//!
//! The encrypted pipeline's only effect on the *plaintext computation* is
//! the noise `e_ms` added to every linear-layer accumulator before its remap
//! LUT (§3.2.2): modulus-switch rounding plus the residue of the dimension
//! switch, modelled as `N(0, (tσ/Q)² + (‖s‖² + 1)/12)` — with `‖s‖² ≈ 2n/3`
//! for a ternary secret of dimension `n`. This module runs the exact integer
//! pipeline with that noise injected, which is what makes Table 5 /
//! Fig. 4 / Fig. 12 computable for full-size ResNets in seconds instead of
//! hours of real FHE.
//!
//! The model is validated against the real pipeline in the integration
//! tests: the measured `e_ms` distribution of `athena_core::pipeline`
//! matches this sampler's parameters.

use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{QModel, QStats};
use athena_nn::tensor::{ITensor, Tensor};

/// Parameters of the `e_ms` noise model.
#[derive(Debug, Clone, Copy)]
pub struct NoiseSpec {
    /// Standard deviation of the accumulator noise.
    pub sigma: f64,
}

impl NoiseSpec {
    /// From the cryptosystem: the §3.2.2 model
    /// `e_ms ~ N(0, (tσ/Q)² + (‖s‖² + 1)/12)` with `‖s‖² ≈ 2n/3` for a
    /// ternary LWE secret of dimension `lwe_n`. The first term carries
    /// the fresh error σ scaled down by the `Q → t` modulus switch; at
    /// production parameters (`log₂ Q = 720`) it is astronomically small,
    /// but it belongs to the model and matters for hypothetical shallow
    /// moduli.
    pub fn from_params(lwe_n: usize, sigma_fresh: f64, t: u64, log2_q: f64) -> Self {
        let scaled_fresh = (t as f64) * sigma_fresh / log2_q.exp2();
        let s_norm_sq = 2.0 * lwe_n as f64 / 3.0;
        Self {
            sigma: (scaled_fresh * scaled_fresh + (s_norm_sq + 1.0) / 12.0).sqrt(),
        }
    }

    /// The noise model induced by a concrete parameter set.
    pub fn for_bfv(params: &BfvParams) -> Self {
        Self::from_params(params.lwe_n, params.sigma, params.t, params.q_bits() as f64)
    }

    /// The paper's production model (`n = 2048`, `t = 65537`,
    /// `log₂ Q = 720`): σ ≈ 10.7, i.e. about 4 bits — the "e_ms typically
    /// falls within about 4 bits" claim.
    pub fn athena_production() -> Self {
        Self::from_params(2048, 3.2, 65537, 720.0)
    }

    /// Noise-free (for plain-Q baselines).
    pub fn zero() -> Self {
        Self { sigma: 0.0 }
    }
}

/// Result of a simulated encrypted inference.
#[derive(Debug, Clone)]
pub struct SimulatedRun {
    /// Float logits.
    pub logits: Vec<f64>,
    /// Predicted class.
    pub predicted: usize,
    /// Accumulator statistics (max MAC per layer — Fig. 4's orange line).
    pub stats: QStats,
}

/// Simulates one encrypted inference.
///
/// This is the *fast path*: it walks [`QModel::forward_with_noise`]
/// directly, without compiling a plan. It is validated against the
/// plan-certified path ([`simulate_inference_planned`], which drives
/// [`crate::plan::NoiseSimBackend`] step-by-step from the compiled plan)
/// in the backend-equivalence tests: at σ = 0 both are exactly the
/// plain-Q integer reference.
pub fn simulate_inference(
    model: &QModel,
    input: &ITensor,
    noise: &NoiseSpec,
    sampler: &mut Sampler,
) -> SimulatedRun {
    let mut stats = QStats::default();
    let mut gen = {
        let mut s = sampler.fork().with_sigma(noise.sigma);
        move || s.gaussian_one()
    };
    let logits = if noise.sigma > 0.0 {
        model.forward_with_noise(input, Some(&mut gen), &mut stats)
    } else {
        model.forward_with_noise(input, None, &mut stats)
    };
    let predicted = crate::util::argmax(&logits);
    SimulatedRun {
        logits,
        predicted,
        stats,
    }
}

/// Simulates one encrypted inference by compiling the model and driving
/// the noise backend step-by-step from the plan — the same compiled
/// artifact the encrypted executor interprets, so the simulation is
/// certified against the real step program rather than a parallel
/// reimplementation. Slower than [`simulate_inference`] (it pays plan
/// compilation), identical in semantics.
pub fn simulate_inference_planned(
    engine: &crate::pipeline::AthenaEngine,
    model: &QModel,
    input: &ITensor,
    noise: &NoiseSpec,
    sampler: &mut Sampler,
) -> crate::plan::SimRun {
    let compiled = crate::plan::compile(engine, model, input.shape());
    crate::plan::execute_sim(&compiled, input, noise, sampler)
}

/// Accuracy of the simulated encrypted pipeline over a labelled set.
pub fn simulated_accuracy(
    model: &QModel,
    images: &[Tensor],
    labels: &[usize],
    noise: &NoiseSpec,
    sampler: &mut Sampler,
) -> f64 {
    let correct = images
        .iter()
        .zip(labels)
        .filter(|(img, &label)| {
            let q = model.quantize_input(img);
            simulate_inference(model, &q, noise, sampler).predicted == label
        })
        .count();
    correct as f64 / images.len() as f64
}

/// Per-layer error ratio (Fig. 4's blue line): fraction of post-remap
/// activations that differ between the noisy and noise-free pipelines.
pub fn per_layer_error_ratio(
    model: &QModel,
    images: &[Tensor],
    noise: &NoiseSpec,
    sampler: &mut Sampler,
) -> Vec<f64> {
    let n_nodes = model.nodes.len();
    let mut diff = vec![0usize; n_nodes];
    let mut total = vec![0usize; n_nodes];
    for img in images {
        let q = model.quantize_input(img);
        let mut st0 = QStats::default();
        let (_, clean) = model.forward_traced(&q, None, &mut st0);
        let mut gen = {
            let mut s = sampler.fork().with_sigma(noise.sigma);
            move || s.gaussian_one()
        };
        let mut st1 = QStats::default();
        let (_, noisy) = model.forward_traced(&q, Some(&mut gen), &mut st1);
        for ni in 0..n_nodes {
            let (a, b) = (&clean[ni + 1], &noisy[ni + 1]);
            total[ni] += a.len();
            diff[ni] += a
                .data()
                .iter()
                .zip(b.data())
                .filter(|(x, y)| x != y)
                .count();
        }
    }
    diff.iter()
        .zip(&total)
        .map(|(&d, &t)| if t == 0 { 0.0 } else { d as f64 / t as f64 })
        .collect()
}

/// Max |accumulator| per layer across a set (Fig. 4's orange line), plus
/// the `t/2` headroom check of §3.3.
pub fn max_mac_per_layer(model: &QModel, images: &[Tensor]) -> Vec<i64> {
    let mut agg = QStats::default();
    for img in images {
        let q = model.quantize_input(img);
        let mut st = QStats::default();
        let _ = model.forward_with_noise(&q, None, &mut st);
        agg.merge(&st);
    }
    // one entry per node
    let mut v = agg.max_acc;
    v.resize(model.nodes.len(), 0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_math::sampler::Sampler;
    use athena_nn::data::{SyntheticConfig, SyntheticSource};
    use athena_nn::models::ModelKind;
    use athena_nn::qmodel::QuantConfig;
    use athena_nn::quant::quantize;
    use athena_nn::train::{train, TrainConfig};

    fn trained_qmodel() -> (QModel, Vec<Tensor>, Vec<usize>) {
        let src = SyntheticSource::new(SyntheticConfig::mnist_like(), 33);
        let train_set = src.generate(240, 1);
        let test_set = src.generate(100, 2);
        let mut s = Sampler::from_seed(12);
        let mut net = ModelKind::Mnist.build(&mut s);
        train(&mut net, &train_set, &TrainConfig::default(), &mut s);
        let calib: Vec<Tensor> = train_set.images.iter().take(24).cloned().collect();
        let qm = quantize(&net, &calib, QuantConfig::w7a7());
        (qm, test_set.images, test_set.labels)
    }

    #[test]
    fn production_noise_is_about_four_bits() {
        let n = NoiseSpec::athena_production();
        assert!(n.sigma > 8.0 && n.sigma < 14.0, "sigma = {}", n.sigma);
        // "about 4 bits"
        assert!((n.sigma.log2() - 4.0).abs() < 1.0);
        // Pin the constant: σ = sqrt((tσ_f/Q)² + (2·2048/3 + 1)/12) ≈ 10.67,
        // the (tσ_f/Q)² term being ~2^-1370 at log₂Q = 720.
        assert!((n.sigma - 10.67).abs() < 0.05, "sigma = {}", n.sigma);
    }

    #[test]
    fn fresh_term_contributes_at_shallow_modulus() {
        // With Q barely above t the scaled fresh error dominates: t·σ/Q =
        // 65537·3.2/2^20 ≈ 0.2 adds in quadrature over the rounding term.
        let deep = NoiseSpec::from_params(2048, 3.2, 65537, 720.0);
        let shallow = NoiseSpec::from_params(2048, 3.2, 65537, 20.0);
        assert!(shallow.sigma > deep.sigma);
        let expected = {
            let fresh = 65537.0 * 3.2 / (2f64).powi(20);
            let round = (2.0 * 2048.0 / 3.0 + 1.0) / 12.0;
            (fresh * fresh + round).sqrt()
        };
        assert!((shallow.sigma - expected).abs() < 1e-9);
    }

    #[test]
    fn for_bfv_matches_explicit_params() {
        let p = athena_fhe::params::BfvParams::test_small();
        let a = NoiseSpec::for_bfv(&p);
        let b = NoiseSpec::from_params(p.lwe_n, p.sigma, p.t, p.q_bits() as f64);
        assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
    }

    #[test]
    fn noise_barely_moves_accuracy() {
        let (qm, images, labels) = trained_qmodel();
        let mut s = Sampler::from_seed(44);
        let clean = simulated_accuracy(&qm, &images, &labels, &NoiseSpec::zero(), &mut s);
        let noisy = simulated_accuracy(
            &qm,
            &images,
            &labels,
            &NoiseSpec::athena_production(),
            &mut s,
        );
        assert!(clean > 0.75, "clean accuracy {clean}");
        assert!(
            (clean - noisy).abs() <= 0.05,
            "cipher-sim accuracy moved too much: {clean} -> {noisy}"
        );
    }

    #[test]
    fn error_ratio_is_small_but_nonzero() {
        let (qm, images, _) = trained_qmodel();
        let mut s = Sampler::from_seed(45);
        let ratios =
            per_layer_error_ratio(&qm, &images[..10], &NoiseSpec::athena_production(), &mut s);
        // Fig. 4: most layers < 6%, max < ~11% — allow a loose upper bound,
        // but require the effect to exist and be small. The final node is
        // excluded: it has no remap LUT, so its raw accumulators absorb the
        // noise directly (the paper's figure likewise plots remapped
        // layers).
        for (i, &r) in ratios.iter().enumerate().take(ratios.len() - 1) {
            assert!(r < 0.35, "layer {i} error ratio {r}");
        }
        assert!(
            ratios.iter().any(|&r| r > 0.0),
            "noise should flip something"
        );
    }

    #[test]
    fn max_mac_fits_plaintext_modulus() {
        let (qm, images, _) = trained_qmodel();
        let macs = max_mac_per_layer(&qm, &images[..20]);
        // §3.3: t = 65537 holds the maximum MAC results under w7a7.
        for (i, &m) in macs.iter().enumerate() {
            assert!(m < 65537 / 2, "layer {i} max MAC {m} exceeds t/2");
        }
        assert!(macs.iter().any(|&m| m > 0));
    }
}
