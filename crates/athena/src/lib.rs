//! # athena
//!
//! Facade crate re-exporting the whole Athena reproduction stack, and host
//! of the repository-level integration tests and examples.
//!
//! ## Layer map
//!
//! * [`athena_math`] — NTTs, RNS, big integers, samplers.
//! * [`athena_fhe`] — BFV, LWE, sample extraction, packing, FBS, S2C.
//! * [`athena_nn`] — CNN substrate, quantization, synthetic data, training.
//! * [`athena_core`] — the five-step framework, simulation, traces.
//! * [`athena_accel`] — the accelerator cycle/energy model + baselines.

pub use athena_accel as accel;
pub use athena_core as core;
pub use athena_fhe as fhe;
pub use athena_math as math;
pub use athena_nn as nn;
