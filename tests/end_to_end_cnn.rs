//! End-to-end: train a tiny CNN on synthetic data, quantize it, run it
//! (a) as the plaintext integer reference, (b) through the noise-faithful
//! simulator, and (c) fully under FHE — and require all three to agree.

use athena::core::infer::run_encrypted;
use athena::core::pipeline::AthenaEngine;
use athena::core::simulate::{simulate_inference, NoiseSpec};
use athena::fhe::params::BfvParams;
use athena::math::sampler::Sampler;
use athena::nn::data::{SyntheticConfig, SyntheticSource};
use athena::nn::layers::{Conv2d, Linear, ReLU};
use athena::nn::network::{NetLayer, Network};
use athena::nn::qmodel::QuantConfig;
use athena::nn::quant::quantize;
use athena::nn::tensor::Tensor;
use athena::nn::train::{evaluate, train, TrainConfig};

/// A micro-CNN sized to fit the reduced FHE parameters
/// (N = 128, t = 257): 8×8 inputs, 3 channels, 27-unit FC.
fn micro_cnn(s: &mut Sampler) -> Network {
    let mut net = Network::new();
    net.push(NetLayer::Conv(Conv2d::new(1, 3, 3, 2, 0, s))); // 3×3×3
    net.push(NetLayer::ReLU(ReLU::new()));
    net.push(NetLayer::Linear(Linear::new(27, 3, s)));
    net
}

#[test]
fn trained_micro_cnn_agrees_across_all_three_pipelines() {
    // 3-class synthetic task on 8×8 images.
    let cfg = SyntheticConfig {
        c: 1,
        hw: 8,
        classes: 3,
        noise: 0.12,
        max_shift: 0,
    };
    let src = SyntheticSource::new(cfg, 404);
    let train_set = src.generate(240, 1);
    let test_set = src.generate(24, 2);
    let mut s = Sampler::from_seed(505);
    let mut net = micro_cnn(&mut s);
    train(
        &mut net,
        &train_set,
        &TrainConfig {
            epochs: 6,
            lr: 0.05,
            ..TrainConfig::default()
        },
        &mut s,
    );
    let float_acc = evaluate(&mut net, &test_set);
    assert!(float_acc > 0.6, "micro CNN should learn: acc {float_acc}");

    // Quantize aggressively (w3a3) so accumulators stay inside t = 257.
    let calib: Vec<Tensor> = train_set.images.iter().take(16).cloned().collect();
    let qm = quantize(&net, &calib, QuantConfig::new(3, 3));

    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(606);
    let (secrets, keys) = engine.keygen(&mut sampler);

    let mut ref_agree = 0;
    let mut sim_agree = 0;
    let n_imgs = 6; // FHE runs are the slow part
    for img in test_set.images.iter().take(n_imgs) {
        let q = qm.quantize_input(img);
        let ref_pred = qm.predict(&q);
        let noise = NoiseSpec::for_bfv(engine.context().params());
        let sim = simulate_inference(&qm, &q, &noise, &mut sampler);
        let enc = run_encrypted(&engine, &secrets, &keys, &qm, &q, &mut sampler);
        let enc_pred = athena::core::util::argmax(&enc.logits);
        if enc_pred == ref_pred {
            ref_agree += 1;
        }
        if sim.predicted == ref_pred {
            sim_agree += 1;
        }
    }
    assert!(
        ref_agree >= n_imgs - 1,
        "encrypted vs integer reference agreement {ref_agree}/{n_imgs}"
    );
    assert!(
        sim_agree >= n_imgs - 1,
        "simulated vs integer reference agreement {sim_agree}/{n_imgs}"
    );
}
