//! Consistency between the *functional* engine (what actually runs under
//! FHE) and the *analytical* trace (what the accelerator model charges):
//! the op categories the engine executes must be the ones the trace counts,
//! and their relative magnitudes must rank the same way.

use athena::core::infer::run_encrypted;
use athena::core::pipeline::AthenaEngine;
use athena::core::trace::{trace_model, OpCounts, Phase, TraceParams};
use athena::fhe::params::BfvParams;
use athena::math::sampler::Sampler;
use athena::nn::models::{ConvShape, ModelSpec, NonLinear, SpecLayer};
use athena::nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena::nn::tensor::ITensor;

/// A tiny conv+FC model and its matching shape-level spec.
fn tiny_model_and_spec() -> (QModel, ModelSpec) {
    let conv_w: Vec<i64> = (0..9).map(|i| (i % 3) - 1).collect();
    let fc_w: Vec<i64> = (0..18).map(|i| (i % 3) - 1).collect();
    let model = QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[1, 1, 3, 3], conv_w),
                    bias: vec![0],
                    stride: 1,
                    padding: 0,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 1.0,
                    w_scale: 1.0,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 9, 1, 1], fc_w),
                    bias: vec![0, 0],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 1.0,
                    out_scale: 1.0,
                }),
                input: 1,
                skip: None,
            },
        ],
        input_scale: 1.0,
        cfg: QuantConfig::new(3, 3),
    };
    let spec = ModelSpec {
        name: "tiny",
        layers: vec![
            SpecLayer {
                conv: ConvShape {
                    hw: 5,
                    c_in: 1,
                    c_out: 1,
                    k: 3,
                    stride: 1,
                    padding: 0,
                },
                act: NonLinear::Activation,
            },
            SpecLayer {
                conv: ConvShape {
                    hw: 1,
                    c_in: 9,
                    c_out: 2,
                    k: 1,
                    stride: 1,
                    padding: 0,
                },
                act: NonLinear::None,
            },
        ],
    };
    (model, spec)
}

#[test]
fn engine_op_mix_matches_trace_structure() {
    let (model, spec) = tiny_model_and_spec();
    // Run the tiny model through the real engine at reduced parameters.
    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(808);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| (i % 3) - 1).collect());
    let enc = run_encrypted(&engine, &secrets, &keys, &model, &input, &mut sampler);

    // Trace the matching spec at the *engine's* parameters.
    let params = TraceParams {
        n: engine.context().n(),
        limbs: engine.context().q_basis().len(),
        t: engine.context().t(),
        lwe_n: engine.context().params().lwe_n,
    };
    let trace = trace_model(&spec, &params, &QuantConfig::new(3, 3));

    // Structural consistency: one FBS pass (the FC layer's act is the
    // output), one S2C, one pack — trace's activation phase is non-empty
    // for exactly one layer.
    assert_eq!(enc.stats.fbs_calls, 1);
    assert_eq!(enc.stats.s2c_calls, 1);
    assert_eq!(enc.stats.packs, 1);
    let act_layers = trace
        .layers
        .iter()
        .filter(|l| l.phases.iter().any(|(p, _)| *p == Phase::Activation))
        .count();
    assert_eq!(act_layers, 1, "one activation layer in the trace too");

    // Magnitude ranking: SMult dominates CMult in both views (Alg. 2's
    // t vs 2√t), and extraction counts are within the same order.
    let totals: OpCounts = trace.total();
    assert!(totals.smult > totals.cmult);
    assert!(enc.stats.fbs.smult > enc.stats.fbs.cmult);
    // Engine extracts the valid conv outputs (9) + FC logits (2); the trace
    // charges the layer outputs likewise.
    assert!(enc.stats.extracts >= 11);
    assert!(totals.sample_extract >= 11);
}

#[test]
fn trace_fbs_op_counts_match_engine_fbs_counts() {
    // The BSGS structure of Alg. 2 must produce a CMult count in the engine
    // (measured) that matches the baby/giant decomposition at the engine's t.
    let (model, _) = tiny_model_and_spec();
    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(809);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let input = ITensor::from_vec(&[1, 5, 5], vec![1; 25]);
    let enc = run_encrypted(&engine, &secrets, &keys, &model, &input, &mut sampler);
    let t = engine.context().t();
    let bs = (t as f64).sqrt().ceil() as usize;
    let gs = (t as usize).div_ceil(bs);
    // One FBS pass per Alg. 2: baby powers (bs − 1), the log-depth giant
    // power tree (gs − 1), and one giant multiply per non-initial block
    // (gs − 1) — about 3·√t in total, not the 2·√t a depth-gs serial
    // schedule would suggest (the tree trades extra CMults for log depth;
    // see DESIGN.md §7 "FBS depth").
    let expected = (bs - 1) + 2 * (gs - 1);
    assert!(
        enc.stats.fbs.cmult <= expected + 2 && enc.stats.fbs.cmult >= expected / 2,
        "engine cmult {} vs expected ≈ {}",
        enc.stats.fbs.cmult,
        expected
    );
    assert!(
        enc.stats.fbs.smult <= t as usize,
        "engine smult {} exceeds t = {t}",
        enc.stats.fbs.smult
    );
}
