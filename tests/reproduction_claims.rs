//! Headline reproduction claims, checked end to end: who wins, by roughly
//! what factor — the "shape" of every evaluation table.

use athena::accel::baselines::{baseline_edp, baseline_latency_ms, baselines};
use athena::accel::config::total_area_mm2;
use athena::accel::sim::AthenaSim;
use athena::core::trace::{trace_model, TraceParams};
use athena::nn::models::ModelSpec;
use athena::nn::qmodel::QuantConfig;

fn specs() -> [ModelSpec; 4] {
    [
        ModelSpec::lenet(),
        ModelSpec::mnist(),
        ModelSpec::resnet(3),
        ModelSpec::resnet(9),
    ]
}

#[test]
fn athena_wins_latency_on_every_benchmark() {
    // Table 6's shape: Athena-w7a7 beats every baseline on every model,
    // and w6a7 beats w7a7.
    let sim = AthenaSim::athena();
    for spec in specs() {
        let w7 = sim.run_model(&spec, &QuantConfig::w7a7()).latency_ms;
        let w6 = sim.run_model(&spec, &QuantConfig::w6a7()).latency_ms;
        assert!(w6 < w7, "{}: w6a7 {w6} !< w7a7 {w7}", spec.name);
        for b in baselines() {
            let base = baseline_latency_ms(&b, &spec);
            assert!(
                w7 < base,
                "{} on {}: Athena {w7:.1} !< {base:.1}",
                b.name,
                spec.name
            );
        }
    }
}

#[test]
fn speedup_factors_in_paper_range() {
    // Paper: 1.5×–2.3× vs the best baselines (ARK, SHARP); 3.8×–6.8× vs
    // CraterLake; ~29×–40× vs BTS.
    let sim = AthenaSim::athena();
    let spec = ModelSpec::resnet(3);
    let athena = sim.run_model(&spec, &QuantConfig::w7a7()).latency_ms;
    let get = |name: &str| {
        baselines()
            .into_iter()
            .find(|b| b.name == name)
            .expect("baseline exists")
    };
    let sharp = baseline_latency_ms(&get("SHARP"), &spec) / athena;
    assert!(
        sharp > 1.2 && sharp < 2.5,
        "SHARP speedup {sharp:.2} (paper 1.51)"
    );
    let cl = baseline_latency_ms(&get("CraterLake"), &spec) / athena;
    assert!(
        cl > 3.0 && cl < 8.0,
        "CraterLake speedup {cl:.2} (paper ~4.9)"
    );
    let bts = baseline_latency_ms(&get("BTS"), &spec) / athena;
    assert!(bts > 20.0 && bts < 50.0, "BTS speedup {bts:.2} (paper ~29)");
}

#[test]
fn edp_and_edap_improvements() {
    // Table 7 / Fig. 11 shape: Athena has the best EDP and EDAP everywhere;
    // EDAP improvement vs SHARP within the paper's 3.8×–9.9× band (±).
    let sim = AthenaSim::athena();
    let area = total_area_mm2();
    for spec in specs() {
        let r = sim.run_model(&spec, &QuantConfig::w7a7());
        for b in baselines() {
            assert!(
                r.edp() < baseline_edp(&b, &spec),
                "{} EDP on {}",
                b.name,
                spec.name
            );
            assert!(
                r.edap(area) < baseline_edp(&b, &spec) * b.area_mm2,
                "{} EDAP on {}",
                b.name,
                spec.name
            );
        }
    }
    let spec = ModelSpec::resnet(3);
    let r = sim.run_model(&spec, &QuantConfig::w7a7());
    let sharp = baselines().into_iter().find(|b| b.name == "SHARP").unwrap();
    let edap_gain = baseline_edp(&sharp, &spec) * sharp.area_mm2 / r.edap(area);
    assert!(
        edap_gain > 2.0 && edap_gain < 15.0,
        "EDAP gain vs SHARP {edap_gain:.1} (paper band 3.8–9.9)"
    );
}

#[test]
fn athena_area_is_smallest() {
    // Table 9: 1.53× smaller than SHARP, 3.59× smaller than ARK.
    let a = total_area_mm2();
    for b in baselines() {
        assert!(b.area_mm2 > a, "{} area {} !> {}", b.name, b.area_mm2, a);
    }
    let sharp = baselines().into_iter().find(|b| b.name == "SHARP").unwrap();
    let ratio = sharp.area_mm2 / a;
    assert!(
        (ratio - 1.53).abs() < 0.05,
        "area ratio vs SHARP {ratio:.2}"
    );
}

#[test]
fn trace_volume_ranks_models_like_the_paper() {
    // MNIST < LeNet < ResNet-20 < ResNet-56 in total work, matching the
    // column ordering of every evaluation table.
    let params = TraceParams::athena_production();
    let q = QuantConfig::w7a7();
    let total = |spec: &ModelSpec| {
        let t = trace_model(spec, &params, &q).total();
        t.smult + 100 * t.cmult + 10 * t.pmult
    };
    let mnist = total(&ModelSpec::mnist());
    let lenet = total(&ModelSpec::lenet());
    let rn20 = total(&ModelSpec::resnet(3));
    let rn56 = total(&ModelSpec::resnet(9));
    assert!(mnist < lenet && lenet < rn20 && rn20 < rn56);
}
