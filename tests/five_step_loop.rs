//! Cross-crate integration: the five-step Athena loop under real FHE, and
//! validation of the `e_ms` noise model that the fast simulator uses.

use athena::core::pipeline::{AthenaEngine, PipelineStats};
use athena::core::simulate::NoiseSpec;
use athena::fhe::fbs::Lut;
use athena::fhe::params::BfvParams;
use athena::math::sampler::Sampler;

/// The measured modulus-switch noise distribution must match the analytic
/// `N(0, (tσ/Q)² + (‖s‖²+1)/12)` model that `simulate::NoiseSpec` uses —
/// this is what licenses running Table 5 at full model scale without FHE.
#[test]
fn e_ms_distribution_matches_noise_model() {
    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(31415);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let n = engine.context().n();
    let t = engine.context().t() as i64;

    // Encrypt known values, run mod-switch + extraction + dimension switch,
    // decrypt, and collect the errors.
    let mut errors: Vec<f64> = Vec::new();
    let mut stats = PipelineStats::default();
    for round in 0..4 {
        let values: Vec<i64> = (0..n as i64)
            .map(|i| ((i * 13 + round) % 101) - 50)
            .collect();
        let positions: Vec<usize> = (0..n).collect();
        let ct = engine.encrypt_at(&values, &positions, &secrets, &mut sampler);
        let lwes = engine.extract_lwes(&ct, &positions, &keys, &mut stats);
        let decs = engine.decrypt_lwes(&lwes, &secrets);
        for (&got, &want) in decs.iter().zip(&values) {
            let mut e = got - want;
            if e > t / 2 {
                e -= t;
            }
            if e < -t / 2 {
                e += t;
            }
            errors.push(e as f64);
        }
    }
    let mean: f64 = errors.iter().sum::<f64>() / errors.len() as f64;
    let var: f64 =
        errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errors.len() as f64;
    let measured_sigma = var.sqrt();
    let model = NoiseSpec::for_bfv(engine.context().params());
    assert!(mean.abs() < 1.0, "e_ms mean {mean}");
    assert!(
        measured_sigma < model.sigma * 2.5 && measured_sigma > model.sigma * 0.3,
        "measured σ = {measured_sigma}, model σ = {}",
        model.sigma
    );
}

/// One full loop where the LUT is a *composition* of remap and a non-ReLU
/// function (sigmoid), proving arbitrary non-linearity support end to end.
#[test]
fn loop_with_sigmoid_lut() {
    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(27182);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let t = engine.context().t();
    let n = engine.context().n();
    let mut stats = PipelineStats::default();

    let values: Vec<i64> = (0..n as i64).map(|i| (i % 65) - 32).collect();
    let positions: Vec<usize> = (0..n).collect();
    let ct = engine.encrypt_at(&values, &positions, &secrets, &mut sampler);
    let lwes = engine.extract_lwes(&ct, &positions, &keys, &mut stats);
    // LUT: sigmoid on x/8, remapped to 4 bits.
    let lut = Lut::from_signed_fn(t, |x| {
        (15.0 / (1.0 + (-(x as f64) / 8.0).exp())).round() as i64
    });
    let opt: Vec<_> = lwes.into_iter().map(Some).collect();
    let out = engine.pack_fbs_s2c(&opt, &lut, &keys, &mut stats);
    let got = engine.decrypt_coeffs(&out, &positions, &secrets);
    let mut close = 0;
    for (&g, &v) in got.iter().zip(&values) {
        let want = (15.0 / (1.0 + (-(v as f64) / 8.0).exp())).round() as i64;
        if (g - want).abs() <= 1 {
            close += 1;
        }
    }
    // e_ms can shift a LUT bin boundary by ±1; nearly all slots must land
    // within one output step.
    assert!(
        close as f64 > 0.95 * n as f64,
        "sigmoid loop: only {close}/{n} within ±1"
    );
}

/// The loop refreshes noise: chaining many loops keeps the budget stable
/// (bootstrapping property at system level).
#[test]
fn chained_loops_sustain_noise_budget() {
    use athena::fhe::bfv::BfvEvaluator;
    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(16180);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let n = engine.context().n();
    let t = engine.context().t();
    let positions: Vec<usize> = (0..n).collect();
    let id_lut = Lut::from_signed_fn(t, |x| x);

    let values: Vec<i64> = (0..n as i64).map(|i| (i % 21) - 10).collect();
    let mut ct = engine.encrypt_at(&values, &positions, &secrets, &mut sampler);
    let ev = BfvEvaluator::new(engine.context());
    let mut budgets = Vec::new();
    let mut stats = PipelineStats::default();
    for _ in 0..3 {
        let lwes = engine.extract_lwes(&ct, &positions, &keys, &mut stats);
        let opt: Vec<_> = lwes.into_iter().map(Some).collect();
        ct = engine.pack_fbs_s2c(&opt, &id_lut, &keys, &mut stats);
        budgets.push(ev.noise_budget(&ct, &secrets.sk));
    }
    // Budgets after each refresh are flat (within a few bits), not decaying.
    assert!(budgets.iter().all(|&b| b > 10), "budgets {budgets:?}");
    assert!(
        (budgets[0] - budgets[2]).abs() <= 6,
        "budget should be stable across loops: {budgets:?}"
    );
    // And the payload survived three identity loops (within e_ms).
    let got = engine.decrypt_coeffs(&ct, &positions, &secrets);
    let close = got
        .iter()
        .zip(&values)
        .filter(|(&g, &v)| (g - v).abs() <= 12)
        .count();
    assert!(close as f64 > 0.9 * n as f64, "{close}/{n} survived");
}
