//! Drive the accelerator model: trace ResNet-20 under the Athena framework
//! at production parameters, run the cycle-level simulation, and print the
//! headline comparison against the baseline ASICs.
//!
//! ```sh
//! cargo run --release --example accelerator_report
//! ```

use athena::accel::baselines::{baseline_latency_ms, baselines};
use athena::accel::config::total_area_mm2;
use athena::accel::sim::AthenaSim;
use athena::core::trace::{trace_model, TraceParams};
use athena::nn::models::ModelSpec;
use athena::nn::qmodel::QuantConfig;

fn main() {
    let spec = ModelSpec::resnet(3);
    let quant = QuantConfig::w7a7();
    let params = TraceParams::athena_production();
    let trace = trace_model(&spec, &params, &quant);

    let totals = trace.total();
    println!("ResNet-20 trace at N=2^15, logQ=720, t=65537 ({}):", quant);
    println!(
        "  {} PMult, {} CMult, {} SMult, {} HAdd, {} HRot, {} extractions",
        totals.pmult, totals.cmult, totals.smult, totals.hadd, totals.hrot, totals.sample_extract
    );

    let sim = AthenaSim::athena();
    let r = sim.run(&trace);
    println!("\nAthena accelerator @1 GHz:");
    println!(
        "  latency {:.1} ms, energy {:.2} J, EDP {:.3} J*s, EDAP {:.1} J*s*mm^2",
        r.latency_ms,
        r.energy_j,
        r.edp(),
        r.edap(total_area_mm2())
    );
    println!("  phase breakdown:");
    let total: f64 = r.phase_costs.iter().map(|(_, c)| c.cycles).sum();
    for (p, c) in &r.phase_costs {
        println!("    {:12} {:5.1}%", p.name(), 100.0 * c.cycles / total);
    }

    println!("\nBaselines on the CKKS-based ResNet-20 (published, scaled):");
    for b in baselines() {
        let ms = baseline_latency_ms(&b, &spec);
        println!(
            "  {:11} {:7.1} ms  ({:.2}x slower than Athena)",
            b.name,
            ms,
            ms / r.latency_ms
        );
    }
}
