//! The non-linearity zoo: functional bootstrapping evaluating exact ReLU,
//! Sigmoid, GELU, absolute-value, and division LUTs homomorphically — the
//! paper's "any non-linear function" claim (§3.2.3), exercised on real
//! ciphertexts.
//!
//! ```sh
//! cargo run --release --example nonlinear_zoo
//! ```

use athena::fhe::bfv::{BfvContext, BfvEvaluator, RelinKey, SecretKey};
use athena::fhe::fbs::{fbs_apply, Lut};
use athena::fhe::params::BfvParams;
use athena::math::modops::Modulus;
use athena::math::sampler::Sampler;
use athena::nn::qmodel::Activation;

fn main() {
    let ctx = BfvContext::new(BfvParams::test_small());
    let t = ctx.t();
    let mut sampler = Sampler::from_seed(7);
    let sk = SecretKey::generate(&ctx, &mut sampler);
    let rlk = RelinKey::generate(&ctx, &sk, &mut sampler);
    let ev = BfvEvaluator::new(&ctx);
    let enc = ctx.encoder();

    // Quantized-domain LUTs: input is a centered accumulator, output a
    // remapped activation (scale 8 keeps outputs within the byte range).
    let scale = 8.0;
    let luts: Vec<(&str, Lut)> = vec![
        (
            "ReLU+remap",
            Lut::from_signed_fn(t, |x| ((x.max(0) as f64) / scale).round() as i64),
        ),
        (
            "Sigmoid+remap",
            Lut::from_signed_fn(t, |x| {
                (Activation::Sigmoid.apply(x as f64 / 16.0) * 15.0).round() as i64
            }),
        ),
        (
            "GELU+remap",
            Lut::from_signed_fn(t, |x| {
                (Activation::Gelu.apply(x as f64 / scale) * 4.0).round() as i64
            }),
        ),
        ("abs", Lut::from_signed_fn(t, |x| x.abs())),
        (
            "divide-by-9 (avgpool)",
            Lut::from_signed_fn(t, |x| ((x as f64) / 9.0).round() as i64),
        ),
    ];

    // One ciphertext of test inputs spanning the centered range.
    let tm = Modulus::new(t);
    let inputs: Vec<i64> = (0..ctx.n() as i64).map(|i| (i * 7 % 201) - 100).collect();
    let slots: Vec<u64> = inputs.iter().map(|&v| tm.from_i64(v)).collect();
    let ct = ev.encrypt_sk(&enc.encode(&slots), &sk, &mut sampler);

    println!(
        "evaluating {} LUTs homomorphically on {} slots each (t = {t})\n",
        luts.len(),
        ctx.n()
    );
    for (name, lut) in &luts {
        let start = std::time::Instant::now();
        let (out, stats) = fbs_apply(&ctx, &ct, lut, &rlk);
        let elapsed = start.elapsed();
        let decoded = enc.decode(&ev.decrypt(&out, &sk));
        let mut exact = 0usize;
        for (&inp, &got) in inputs.iter().zip(&decoded) {
            if got == lut.get(tm.from_i64(inp)) {
                exact += 1;
            }
        }
        println!(
            "{name:22} exact on {exact}/{} slots | {} CMult, {} SMult | {:.2?}",
            inputs.len(),
            stats.cmult,
            stats.smult,
            elapsed
        );
        assert_eq!(
            exact,
            inputs.len(),
            "{name} must be exact — FBS is not an approximation"
        );
    }
    println!("\nAll LUTs evaluated exactly: FBS supports arbitrary non-linear functions.");
}
