//! Encrypted pooling scenario: a LeNet-style conv → ReLU → max-pool block
//! running fully under FHE, demonstrating the PEGASUS-style homomorphic
//! max-tree (`max(a,b) = b + ReLU(a − b)`, one LUT per round) and the
//! LWE-level exact summation used for average pooling.
//!
//! ```sh
//! cargo run --release --example encrypted_pooling
//! ```

use athena::core::infer::run_encrypted;
use athena::core::pipeline::AthenaEngine;
use athena::fhe::params::BfvParams;
use athena::math::sampler::Sampler;
use athena::nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena::nn::tensor::ITensor;

fn block(pool: QOp) -> QModel {
    QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[1, 1, 3, 3], vec![0, 1, 0, 1, 2, 1, 0, 1, 0]),
                    bias: vec![0],
                    stride: 1,
                    padding: 1,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: pool,
                input: 1,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 4, 1, 1], vec![1, -1, 1, -1, 2, 0, -2, 0]),
                    bias: vec![0, 0],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 1.0,
                    out_scale: 1.0,
                }),
                input: 2,
                skip: None,
            },
        ],
        input_scale: 1.0,
        cfg: QuantConfig::new(3, 4),
    }
}

fn main() {
    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(99);
    println!("generating keys...");
    let (secrets, keys) = engine.keygen(&mut sampler);
    let input = ITensor::from_vec(
        &[1, 4, 4],
        vec![1, -2, 3, 0, 2, 1, -1, 2, 0, 3, 1, -2, 1, 0, 2, 1],
    );
    for (name, pool) in [
        ("max-pool 2x2", QOp::MaxPool { k: 2 }),
        ("avg-pool 2x2", QOp::AvgPool { k: 2 }),
    ] {
        let model = block(pool);
        let reference = model.forward(&input);
        let start = std::time::Instant::now();
        let enc = run_encrypted(&engine, &secrets, &keys, &model, &input, &mut sampler);
        println!(
            "\n{name}: plaintext logits {reference:?}\n{:13} encrypted logits {:?} ({:.2?})",
            "",
            enc.logits,
            start.elapsed()
        );
        println!(
            "{:13} FBS calls: {} (max-tree costs k^2-1 = 3 extra rounds vs avg's divide LUT)",
            "", enc.stats.fbs_calls
        );
    }
}
