//! Quickstart: encrypt an image, run a tiny quantized CNN **fully under
//! FHE** through the Athena five-step loop, decrypt the logits, and compare
//! with the plaintext integer pipeline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use athena::core::infer::run_encrypted;
use athena::core::pipeline::AthenaEngine;
use athena::fhe::params::BfvParams;
use athena::math::sampler::Sampler;
use athena::nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena::nn::tensor::ITensor;

fn main() {
    // A reduced parameter set: every pipeline step is real cryptography,
    // just at degree 128 / t = 257 so it finishes in seconds.
    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(2025);
    println!("generating keys (RLWE sk, relin, Galois, LWE ksk, packing)...");
    let (secrets, keys) = engine.keygen(&mut sampler);

    // Tiny quantized CNN: conv 1→2 (ReLU, fused remap) then FC 18→3.
    let conv_w: Vec<i64> = (0..18).map(|i| ((i % 5) as i64) - 2).collect();
    let fc_w: Vec<i64> = (0..54).map(|i| ((i % 3) as i64) - 1).collect();
    let model = QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 1, 3, 3], conv_w),
                    bias: vec![1, -2],
                    stride: 1,
                    padding: 0,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 0.5,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[3, 18, 1, 1], fc_w),
                    bias: vec![0, 1, -1],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 1,
                skip: None,
            },
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    };

    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| (i % 5) - 2).collect());
    let reference = model.forward(&input);

    println!("running encrypted inference (conv → modswitch → extract → pack → FBS → S2C → FC)...");
    let enc = run_encrypted(&engine, &secrets, &keys, &model, &input, &mut sampler);

    println!("\nplaintext logits : {reference:?}");
    println!("encrypted logits : {:?}", enc.logits);
    let plain_arg = athena::core::util::argmax(&reference);
    let enc_arg = athena::core::util::argmax(&enc.logits);
    println!("predicted class  : plaintext {plain_arg}, encrypted {enc_arg}");
    let max_delta = reference
        .iter()
        .zip(&enc.logits)
        .map(|(p, e)| (p - e).abs())
        .fold(0.0f64, f64::max);
    println!(
        "max logit delta  : {max_delta} (≤ one activation step expected: e_ms noise on LUT inputs)"
    );
    println!(
        "\npipeline ops: {} PMult, {} extractions, {} pack, {} FBS ({} CMult, {} SMult), {} S2C",
        enc.stats.pmult,
        enc.stats.extracts,
        enc.stats.packs,
        enc.stats.fbs_calls,
        enc.stats.fbs.cmult,
        enc.stats.fbs.smult,
        enc.stats.s2c_calls,
    );
}
